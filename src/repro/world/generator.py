"""The synthetic ground-truth world generator.

Materializes a full world from a :class:`~repro.config.WorldConfig`:

* governments, funds, holdings, private groups and operator companies with
  equity stakes reproducing the ownership archetypes of the paper;
* foreign subsidiaries following the configured expansion profiles;
* ASN delegations with realistic registered names (including stale and
  unrelated local aliases);
* IPv4 prefixes and eyeball populations sized by country;
* a valley-free AS-level topology (tier-1 clique, international carriers,
  country gateways, domestic operators, sibling ASNs, long-tail networks);
* a set of BGP monitors.

Everything is deterministic given the config's seed.  The derived data
sources (:mod:`repro.sources`) and the classification pipeline only see
noisy projections of this world; the world itself is the scoring oracle.

Generation is **plan/commit split** so the per-country phases can fan out
through an :class:`~repro.parallel.ExecutionContext`:

* *plan* (worker side, parallel): each country's market plan, operator
  companies, ownership scaffolding, ASN sizing, excluded organizations and
  long tail are computed by a pure function of ``(config, country)`` on a
  dedicated RNG substream (``market:<cc>``, ``operators:<cc>``,
  ``names:<cc>``...), producing picklable bundles; topology wiring and the
  expansion profiles fan out the same way (``topology:<cc>``,
  ``expansion:<cc>``).
* *commit* (coordinator side, serial): bundles are applied in the fixed
  country order — ASN numbers and address blocks are drawn here, global
  name uniqueness is enforced here, and cross-country edges (regional
  export) are resolved here — so the result is **bit-identical at every
  ``--jobs`` setting**: the serial path simply runs the same plan
  functions inline in the same order.
"""

from __future__ import annotations

import os
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.config import WorldConfig
from repro.errors import WorldError
from repro.net.asn import ASNAllocator
from repro.net.monitors import MonitorSet, RouteCollector
from repro.net.prefix import Prefix, summarize_address_counts
from repro.net.routing import RoutingPolicy
from repro.net.topology import ASGraph
from repro.obs import get_metrics, span
from repro.rng import SeedSequenceFactory
from repro.text.names import NameForge
from repro.text.normalize import normalize_name
from repro.world.countries import COUNTRIES, Country
from repro.world.entities import (
    AsnRecord,
    Entity,
    EntityKind,
    Operator,
    OperatorRole,
    OperatorScope,
    OwnershipStake,
)
from repro.world.markets import CountryMarketPlan, OperatorPlan, plan_country
from repro.world.ownership import OwnershipGraph

__all__ = ["World", "WorldGenerator", "GroundTruthOperator"]

#: Countries whose flagship state carrier acts as an international transit
#: provider (big customer cones — the Table 5 archetypes: SingTel,
#: Rostelecom, China Telecom, Angola Cables, Internexa, Swisscom, Exatel,
#: BSCCL...).
#: Bumped whenever a change alters the world a given config generates, so
#: cached world blobs written by older revisions are never served stale.
GENERATOR_VERSION = 4

INTERNATIONAL_CARRIER_CCS: Tuple[str, ...] = (
    "SG",
    "RU",
    "CN",
    "AO",
    "CO",
    "CH",
    "PL",
    "BD",
    "QA",
    "AE",
    "NO",
    "MY",
)

#: Advanced economies hosting the private global tier-1 carriers.
_TIER1_HOME_CCS: Tuple[str, ...] = (
    "US",
    "US",
    "US",
    "GB",
    "DE",
    "FR",
    "JP",
    "NL",
    "SE",
    "IT",
)

#: Private multinational groups (America-Movil-style) that own operators in
#: several countries; they create the Orbis false-positive surface.
_PRIVATE_GROUP_HOME_CCS: Tuple[str, ...] = ("MX", "ES", "GB", "IN", "FR", "ZA")

_COUNTRY_BY_CC: Dict[str, Country] = {c.cc: c for c in COUNTRIES}

#: Distinguishing words for commit-time name de-duplication.  The pool is
#: a synthesized head×tail cross product (600 distinct invented words, e.g.
#: "Velvia", "Nordane") rather than the forge's 20 generic English salts:
#: several thousand renames happen at full scale, and a small pool would
#: make every salt a *high-frequency registry token* — fattening the
#: token-index candidate sets the company mapper scores, which measurably
#: doubles mapping wall time.  Rare invented tokens keep each candidate
#: set small and make renamed names highly distinctive to match.
_SALT_HEADS: Tuple[str, ...] = (
    "Vel",
    "Nor",
    "Zen",
    "Ald",
    "Bren",
    "Cor",
    "Dal",
    "Eri",
    "Fen",
    "Gal",
    "Hel",
    "Ost",
    "Jur",
    "Kel",
    "Lum",
    "Mir",
    "Nex",
    "Ori",
    "Pel",
    "Quor",
    "Rav",
    "Sol",
    "Tarn",
    "Ulm",
    "Vor",
    "Wes",
    "Xan",
    "Yar",
    "Zor",
    "Arc",
)
_SALT_TAILS: Tuple[str, ...] = (
    "via",
    "dane",
    "mont",
    "tara",
    "lith",
    "band",
    "mere",
    "stad",
    "wick",
    "holm",
    "gate",
    "ford",
    "nova",
    "crest",
    "field",
    "haven",
    "port",
    "reach",
    "ridge",
    "vale",
)
_SALT_WORDS: Tuple[str, ...] = tuple(
    head + tail for head in _SALT_HEADS for tail in _SALT_TAILS
)


@dataclass
class GroundTruthOperator:
    """One confirmed-by-construction state-owned Internet operator."""

    operator: Operator
    controlling_cc: str
    is_foreign_subsidiary: bool
    parent_operator_id: Optional[str]
    asns: Tuple[int, ...]


@dataclass
class World:
    """A fully materialized synthetic world (the scoring oracle)."""

    config: WorldConfig
    countries: Tuple[Country, ...]
    ownership: OwnershipGraph
    plans: Dict[str, CountryMarketPlan]
    asn_records: Dict[int, AsnRecord]
    operator_asns: Dict[str, List[int]]
    graph: ASGraph
    monitors: MonitorSet
    tier1_asns: Tuple[int, ...]
    international_carrier_asns: Dict[str, int]   # cc -> carrier ASN
    gateway_asns: Dict[str, List[int]]            # cc -> gateway ASNs
    transit_dominant_ccs: Set[str]
    routing_policy: Optional[RoutingPolicy] = field(default=None, repr=False)
    _collector: Optional[RouteCollector] = field(default=None, repr=False)
    _truth_cache: Optional[List[GroundTruthOperator]] = field(default=None, repr=False)

    # -- derived views -------------------------------------------------------
    @property
    def collector(self) -> RouteCollector:
        """Lazy route collector over the world's monitors."""
        if self._collector is None:
            self._collector = RouteCollector(
                self.graph, self.monitors, policy=self.routing_policy
            )
        return self._collector

    def set_routing_policy(self, policy: Optional[RoutingPolicy]) -> None:
        """Install (or clear) a routing policy, invalidating cached trees.

        ``None`` restores the static oracle trees.  A non-``None`` policy —
        even a neutral one — routes every subsequent path lookup through
        the policy engine of :mod:`repro.net.routing`.
        """
        self.routing_policy = policy
        self._collector = None

    def rewire(self, graph: ASGraph) -> None:
        """Swap in a rebuilt topology (scenario re-homing), dropping the
        collector so routing trees re-propagate over the new graph."""
        self.graph = graph
        self._collector = None

    def operators(self) -> List[Operator]:
        return self.ownership.operators()

    def operator(self, operator_id: str) -> Operator:
        entity = self.ownership.entity(operator_id)
        if not isinstance(entity, Operator):
            raise WorldError(f"{operator_id} is not an operator")
        return entity

    def records_of(self, operator_id: str) -> List[AsnRecord]:
        return [self.asn_records[a] for a in self.operator_asns.get(operator_id, [])]

    def prefix_table(self) -> List[Tuple[Prefix, int]]:
        """All announced (prefix, origin ASN) pairs."""
        table: List[Tuple[Prefix, int]] = []
        for record in self.asn_records.values():
            for base, length in record.prefixes:
                table.append((Prefix(base, length), record.asn))
        return table

    def true_address_counts(self) -> Dict[int, int]:
        """De-duplicated announced address count per origin ASN (one
        post-order trie pass over the full announcement table)."""
        return summarize_address_counts(self.prefix_table())

    def country_of_asn(self, asn: int) -> str:
        return self.asn_records[asn].cc

    # -- ground truth --------------------------------------------------------
    def ground_truth(self) -> List[GroundTruthOperator]:
        """All operators meeting the paper's state-owned definition (§3):
        majority state control, national scope, unrestricted services."""
        if self._truth_cache is not None:
            return self._truth_cache
        assessments = self.ownership.assess_all()
        truth: List[GroundTruthOperator] = []
        for op in self.ownership.operators():
            verdict = assessments[op.entity_id]
            if not verdict.is_state_controlled:
                continue
            if op.scope is not OperatorScope.NATIONAL:
                continue
            if not op.offers_unrestricted_service:
                continue
            controlling = verdict.controlling_cc
            assert controlling is not None
            foreign = controlling != op.cc
            parent = self.ownership.majority_parent(op.entity_id)
            parent_id = (
                parent.entity_id
                if parent is not None and isinstance(parent, Operator)
                else None
            )
            truth.append(
                GroundTruthOperator(
                    operator=op,
                    controlling_cc=controlling,
                    is_foreign_subsidiary=foreign,
                    parent_operator_id=parent_id,
                    asns=tuple(self.operator_asns.get(op.entity_id, ())),
                )
            )
        self._truth_cache = truth
        return truth

    def ground_truth_asns(self) -> Set[int]:
        """The true set of state-owned ASNs."""
        return {asn for gto in self.ground_truth() for asn in gto.asns}

    def content_digest(self) -> str:
        """Stable digest of the world's observable content.

        The config fingerprint names what *should* be built; this digests
        what *was* built — registry records, ownership structure, topology,
        monitors.  Persistent-cache entries derived from a world are keyed
        on both, so an entry written by a different code revision (same
        config, different generated world) can never be served stale.
        """
        from repro.parallel.cache import stable_digest

        # A non-neutral routing policy changes which paths monitors observe,
        # so it must key every derived cache entry.  Neutral/absent policies
        # are deliberately omitted: the policy engine is path-identical to
        # the static oracle there, and keeping the digest unchanged lets
        # static and neutral-policy runs share persistent CTI cache entries.
        policy_key = (
            self.routing_policy.as_dict()
            if self.routing_policy is not None
            and not self.routing_policy.is_neutral
            else None
        )
        return stable_digest(
            {
                **({"routing_policy": policy_key} if policy_key is not None else {}),
                "records": {
                    str(asn): [
                        record.operator_id,
                        record.cc,
                        record.rir,
                        record.registered_name,
                        str(record.role),
                        [str(p) for p in record.prefixes],
                        record.eyeballs,
                    ]
                    for asn, record in self.asn_records.items()
                },
                "operator_asns": self.operator_asns,
                "entities": {
                    entity.entity_id: [
                        entity.name,
                        getattr(entity, "brand", None),
                        entity.cc,
                        str(entity.kind),
                        str(getattr(entity, "role", None)),
                    ]
                    for entity in self.ownership._entities.values()
                },
                "stakes": {
                    owned: [
                        [stake.owner_id, stake.fraction, stake.since_year]
                        for stake in stakes
                    ]
                    for owned, stakes in self.ownership._stakes_in.items()
                    if stakes
                },
                "edges": {
                    str(asn): [
                        sorted(self.graph.providers_of(asn)),
                        sorted(self.graph.peers_of(asn)),
                    ]
                    for asn in self.graph
                },
                "monitors": [[m.monitor_id, m.host_asn] for m in self.monitors],
                "tier1": list(self.tier1_asns),
                "carriers": self.international_carrier_asns,
                "gateways": self.gateway_asns,
                "transit_dominant": sorted(self.transit_dominant_ccs),
            }
        )

    def ground_truth_operator_ids(self) -> Set[str]:
        return {gto.operator.entity_id for gto in self.ground_truth()}

    def foreign_subsidiary_asns(self) -> Set[int]:
        return {
            asn
            for gto in self.ground_truth()
            if gto.is_foreign_subsidiary
            for asn in gto.asns
        }

    def minority_operator_ids(self) -> Set[str]:
        """Operators with a sub-threshold government stake (and no majority)."""
        assessments = self.ownership.assess_all()
        result: Set[str] = set()
        for op in self.ownership.operators():
            verdict = assessments[op.entity_id]
            if verdict.is_state_controlled:
                continue
            if verdict.minority_stakes():
                result.add(op.entity_id)
        return result

    def state_owned_countries(self) -> Set[str]:
        """Countries that majority-own at least one Internet operator."""
        return {gto.controlling_cc for gto in self.ground_truth()}


# ---------------------------------------------------------------------------
# Worker-side plan payloads.  Everything below must stay picklable and must
# never iterate a set (iteration order would not survive the process hop).
# ---------------------------------------------------------------------------
@dataclass
class _AsnSpec:
    """A worker-computed ASN delegation plan, replayed at commit time.

    The worker draws everything that needs the country's RNG (sibling
    weights, registered-name rolls, the more-specific coin); the commit
    performs the draws' *consequences* against the shared allocator and
    address cursor, whose state depends only on commit order.
    """

    cc: str
    rir: str
    role: OperatorRole
    registered: List[str]       # per-sibling WHOIS registered names
    share_24s: List[int]        # per-sibling /24-equivalents
    eyeballs: List[int]         # per-sibling user counts
    more_specific: bool         # announce a /24 out of sibling #1


@dataclass
class _OperatorBundle:
    """One operator plus its ownership scaffolding, built by a worker."""

    operator_id: str
    entities: List[Entity]      # original insertion order; includes operator
    stakes: List[OwnershipStake]
    asn_spec: Optional[_AsnSpec]


@dataclass
class _CountryBundle:
    """Everything one country contributes, in commit-phase groups."""

    cc: str
    plan: CountryMarketPlan
    operators: List[_OperatorBundle]
    excluded: List[_OperatorBundle]
    tail: List[_OperatorBundle]


@dataclass
class _SubsidiaryBundle:
    """One planned foreign subsidiary of an expansion-profile owner."""

    target_cc: str
    parent_id: str
    name: str
    brand: str
    role: OperatorRole
    founded_year: int
    stake_fraction: float
    asnless: bool
    addr_share: float = 0.0
    eyeball_share: float = 0.0
    sibling_count: int = 0
    asn_spec: Optional[_AsnSpec] = None


@dataclass(frozen=True)
class _OpWire:
    """The slice of one operator the wiring planner needs."""

    asns: Tuple[int, ...]
    role: OperatorRole
    primary_addresses: int


@dataclass
class _WiringScaffold:
    """Read-only topology context shipped to the wiring workers once."""

    seed: int
    tier1_asns: Tuple[int, ...]
    intl_carriers: Dict[str, int]          # cc -> carrier ASN (fixed order)
    transit_dominant: FrozenSet[str]
    ops_by_cc: Dict[str, List[_OpWire]]    # per-country, insertion order


#: Edge-kind codes for the shared-memory wiring columns.
_EDGE_KINDS: Tuple[str, ...] = ("c2p", "p2p")


@dataclass
class _CountryWiring:
    """One country's planned edges plus its commit-time export draws."""

    cc: str
    has_operators: bool
    gateways: List[int]
    edges: List[Tuple[str, int, int]]      # ("c2p"|"p2p", a, b)
    exports: List[Tuple[int, List[str]]]   # (gateway, neighbor ccs to try)

    # Shareable-result protocol: the edge list — the heavy part of a wiring
    # plan — crosses the pool pipe as three shared-memory columns (kind
    # code, endpoint a, endpoint b) instead of a pickled list of tuples;
    # everything small rides in the meta dict.
    def __shm_export__(self):
        kinds = bytes(_EDGE_KINDS.index(kind) for kind, _, _ in self.edges)
        a_col = array("q", (a for _, a, _ in self.edges))
        b_col = array("q", (b for _, _, b in self.edges))
        meta = {
            "cc": self.cc,
            "has_operators": self.has_operators,
            "gateways": list(self.gateways),
            "exports": [(g, list(ccs)) for g, ccs in self.exports],
        }
        return meta, [("B", kinds), ("q", a_col), ("q", b_col)]

    @classmethod
    def __shm_rebuild__(cls, meta, views):
        kind_col, a_col, b_col = views
        edges = [
            (_EDGE_KINDS[kind], a, b)
            for kind, a, b in zip(kind_col.tolist(), a_col.tolist(), b_col.tolist())
        ]
        return cls(
            cc=meta["cc"],
            has_operators=meta["has_operators"],
            gateways=list(meta["gateways"]),
            edges=edges,
            exports=[(g, list(ccs)) for g, ccs in meta["exports"]],
        )


def _plan_asns(
    operator_name: str,
    role: OperatorRole,
    cc: str,
    rir: str,
    sibling_count: int,
    addr_24s: int,
    eyeballs: int,
    rng,
    forge: NameForge,
    unrelated_alias_prob: float = 0.0,
) -> _AsnSpec:
    """Draw one operator's ASN plan (same draw order as the old inline code)."""
    if sibling_count == 1:
        weights = [1.0]
    else:
        primary_weight = rng.uniform(0.55, 0.85)
        rest = [rng.random() + 0.1 for _ in range(sibling_count - 1)]
        rest_total = sum(rest)
        weights = [primary_weight] + [
            (1 - primary_weight) * r / rest_total for r in rest
        ]
    registered: List[str] = []
    share_24s: List[int] = []
    eyeball_counts: List[int] = []
    for i, weight in enumerate(weights):
        share_24s.append(max(1, round(addr_24s * weight)))
        if i == 0:
            name = operator_name
        elif rng.random() < unrelated_alias_prob:
            name = forge.unrelated_legal_name(rir)
        elif rng.random() < 0.26:
            # Sibling from an acquisition keeps the acquired legal name.
            name = forge.unrelated_legal_name(rir)
        elif rng.random() < 0.3:
            name = forge.stale_variant(operator_name)
        else:
            name = operator_name
        registered.append(name)
        eyeball_counts.append(round(eyeballs * weight))
    # Occasionally announce a more-specific /24 out of a sibling ASN,
    # exercising the more-specific de-duplication everywhere downstream.
    more_specific = sibling_count > 1 and rng.random() < 0.25
    return _AsnSpec(
        cc=cc,
        rir=rir,
        role=role,
        registered=registered,
        share_24s=share_24s,
        eyeballs=eyeball_counts,
        more_specific=more_specific,
    )


def _attach_ownership_plan(
    operator: Operator,
    archetype: str,
    country: Country,
    rng,
    forge: NameForge,
    private_group_ids: List[str],
    entities: List[Entity],
    stakes: List[OwnershipStake],
) -> None:
    gov_id = f"gov-{country.cc}"
    if archetype == "state_direct":
        fraction = rng.uniform(0.51, 1.0)
        stakes.append(OwnershipStake(gov_id, operator.entity_id, round(fraction, 3)))
    elif archetype == "state_funds":
        # 2-3 funds, each a minority holder; their aggregate confers
        # control (Telekom Malaysia pattern).
        fund_count = rng.randint(2, 3)
        target_total = rng.uniform(0.52, 0.72)
        cuts = sorted(rng.random() for _ in range(fund_count - 1))
        shares = [(b - a) * target_total for a, b in zip([0.0] + cuts, cuts + [1.0])]
        for i, share in enumerate(shares):
            fund = Entity(
                entity_id=f"fund-{country.cc}-{operator.entity_id}-{i}",
                kind=EntityKind.STATE_FUND,
                name=forge.fund(country.name),
                cc=country.cc,
            )
            entities.append(fund)
            stakes.append(
                OwnershipStake(gov_id, fund.entity_id, round(rng.uniform(0.7, 1.0), 3))
            )
            stakes.append(
                OwnershipStake(
                    fund.entity_id,
                    operator.entity_id,
                    round(min(share, 0.49), 3),
                )
            )
    elif archetype == "state_holding":
        holding = Entity(
            entity_id=f"hold-{country.cc}-{operator.entity_id}",
            kind=EntityKind.HOLDING,
            name=f"{country.name} Telecommunications Holding",
            cc=country.cc,
        )
        entities.append(holding)
        stakes.append(
            OwnershipStake(gov_id, holding.entity_id, round(rng.uniform(0.55, 1.0), 3))
        )
        stakes.append(
            OwnershipStake(
                holding.entity_id,
                operator.entity_id,
                round(rng.uniform(0.51, 0.95), 3),
            )
        )
    elif archetype == "state_jv":
        partner = rng.choice([c for c in COUNTRIES if c.cc != country.cc])
        major = rng.uniform(0.51, 0.7)
        minor = rng.uniform(0.1, min(0.3, 0.99 - major))
        stakes.append(OwnershipStake(gov_id, operator.entity_id, round(major, 3)))
        stakes.append(
            OwnershipStake(f"gov-{partner.cc}", operator.entity_id, round(minor, 3))
        )
    elif archetype == "minority":
        fraction = rng.uniform(0.08, 0.45)
        stakes.append(OwnershipStake(gov_id, operator.entity_id, round(fraction, 3)))
    elif archetype == "private":
        if private_group_ids and rng.random() < 0.22:
            group_id = rng.choice(private_group_ids)
            stakes.append(
                OwnershipStake(
                    group_id,
                    operator.entity_id,
                    round(rng.uniform(0.51, 1.0), 3),
                )
            )
    else:
        raise WorldError(f"unknown ownership archetype {archetype!r}")


def _build_operator(
    config: WorldConfig,
    country: Country,
    op_plan: OperatorPlan,
    index: int,
    rng,
    forge: NameForge,
    private_group_ids: List[str],
) -> _OperatorBundle:
    if op_plan.misleading_name:
        legal, brand = forge.misleading_private_name(country.name)
    elif op_plan.role is OperatorRole.INCUMBENT:
        legal, brand = forge.incumbent(country.name, country.rir)
    elif op_plan.role in (OperatorRole.TRANSIT, OperatorRole.CABLE):
        legal, brand = forge.transit_operator(country.name, country.rir)
    else:
        legal, brand = forge.challenger(country.name, country.rir)
    operator = Operator(
        entity_id=f"op-{country.cc}-m{index}",
        kind=EntityKind.OPERATOR,
        name=legal,
        cc=country.cc,
        brand=brand,
        role=op_plan.role,
        scope=OperatorScope.NATIONAL,
        founded_year=rng.randint(1985, 2015),
        website=f"{brand.lower().replace(' ', '')}.example",
    )
    entities: List[Entity] = [operator]
    stakes: List[OwnershipStake] = []
    _attach_ownership_plan(
        operator,
        op_plan.archetype,
        country,
        rng,
        forge,
        private_group_ids,
        entities,
        stakes,
    )
    budget_24s = config.addr_budget_by_class[country.addr_class]
    addr_24s = max(1, round(op_plan.addr_share * budget_24s))
    eyeballs_total = round(
        op_plan.eyeball_share * config.eyeball_budget_by_class[country.pop_class]
    )
    spec = _plan_asns(
        operator.name,
        operator.role,
        country.cc,
        country.rir,
        sibling_count=op_plan.sibling_count,
        addr_24s=addr_24s,
        eyeballs=eyeballs_total,
        rng=rng,
        forge=forge,
    )
    return _OperatorBundle(operator.entity_id, entities, stakes, spec)


def _build_excluded(
    config: WorldConfig,
    country: Country,
    plan: CountryMarketPlan,
    rng,
    forge: NameForge,
) -> List[_OperatorBundle]:
    bundles: List[_OperatorBundle] = []
    index = 0
    for role in plan.excluded_roles:
        index += 1
        suffix = {
            OperatorRole.ACADEMIC: "National Research and Education Network",
            OperatorRole.GOVNET: "Government Network Agency",
            OperatorRole.NIC: "Network Information Centre",
        }[role]
        operator = Operator(
            entity_id=f"op-{country.cc}-x{index}",
            kind=EntityKind.OPERATOR,
            name=f"{country.name} {suffix}",
            cc=country.cc,
            brand=None,
            role=role,
            scope=OperatorScope.NATIONAL,
            founded_year=rng.randint(1990, 2012),
        )
        stakes = [OwnershipStake(f"gov-{country.cc}", operator.entity_id, 1.0)]
        budget_24s = config.addr_budget_by_class[country.addr_class]
        spec = _plan_asns(
            operator.name,
            operator.role,
            country.cc,
            country.rir,
            sibling_count=1,
            addr_24s=max(1, round(0.008 * budget_24s * rng.uniform(0.5, 1.5))),
            eyeballs=rng.randint(0, 20000) if role is OperatorRole.ACADEMIC else 0,
            rng=rng,
            forge=forge,
        )
        bundles.append(_OperatorBundle(operator.entity_id, [operator], stakes, spec))
    # Subnational state operators in large countries (§5.3 excludes them
    # from the dataset even though a state entity owns them).
    if country.addr_class >= 3 and rng.random() < 0.35:
        index += 1
        province = Entity(
            entity_id=f"subnat-{country.cc}",
            kind=EntityKind.SUBNATIONAL,
            name=f"Province of {country.name} North",
            cc=country.cc,
        )
        operator = Operator(
            entity_id=f"op-{country.cc}-x{index}",
            kind=EntityKind.OPERATOR,
            name=f"{country.name} Northern Regional Telecom",
            cc=country.cc,
            role=OperatorRole.ACCESS,
            scope=OperatorScope.SUBNATIONAL,
            founded_year=rng.randint(1995, 2015),
        )
        stakes = [
            OwnershipStake(
                province.entity_id,
                operator.entity_id,
                round(rng.uniform(0.6, 1.0), 3),
            )
        ]
        budget_24s = config.addr_budget_by_class[country.addr_class]
        spec = _plan_asns(
            operator.name,
            operator.role,
            country.cc,
            country.rir,
            sibling_count=1,
            addr_24s=max(2, round(0.006 * budget_24s * rng.uniform(0.5, 1.5))),
            eyeballs=rng.randint(5000, 80000),
            rng=rng,
            forge=forge,
        )
        bundles.append(
            _OperatorBundle(operator.entity_id, [province, operator], stakes, spec)
        )
    return bundles


def _build_tail(
    config: WorldConfig,
    country: Country,
    plan: CountryMarketPlan,
    rng,
    forge: NameForge,
) -> List[_OperatorBundle]:
    bundles: List[_OperatorBundle] = []
    eyeball_budget = config.eyeball_budget_by_class[country.pop_class]
    tail_eyeballs = round(0.1 * eyeball_budget)
    count = plan.tail_as_count
    # The long tail shares ~5 % of the country's address budget so it
    # never dilutes the planned operator market shares.
    budget_24s = config.addr_budget_by_class[country.addr_class]
    tail_24s_each = max(1, round(0.05 * budget_24s / max(count, 1)))
    for i in range(count):
        legal = forge.unrelated_legal_name(country.rir)
        operator = Operator(
            entity_id=f"op-{country.cc}-t{i + 1}",
            kind=EntityKind.OPERATOR,
            name=legal,
            cc=country.cc,
            role=(
                OperatorRole.ENTERPRISE if rng.random() < 0.6 else OperatorRole.ACCESS
            ),
            scope=OperatorScope.NATIONAL,
            founded_year=rng.randint(1995, 2019),
        )
        spec = _plan_asns(
            operator.name,
            operator.role,
            country.cc,
            country.rir,
            sibling_count=1,
            addr_24s=max(1, round(tail_24s_each * rng.uniform(0.5, 1.5))),
            eyeballs=(
                max(0, round(tail_eyeballs / max(count, 1)))
                if operator.role is OperatorRole.ACCESS
                else 0
            ),
            rng=rng,
            forge=forge,
        )
        bundles.append(_OperatorBundle(operator.entity_id, [operator], [], spec))
    return bundles


def _build_country_task(state: dict, cc: str) -> _CountryBundle:
    """Plan one country end to end: markets, operators, excluded, tail.

    Pure function of ``(config, country)`` — every random draw comes from a
    substream derived from the world seed and the country code, so results
    are identical whether this runs inline or in a worker process.
    """
    config: WorldConfig = state["config"]
    private_group_ids: List[str] = state["private_groups"]
    country = _COUNTRY_BY_CC[cc]
    factory = SeedSequenceFactory(config.seed)
    forge = NameForge(factory.fresh(f"names:{cc}"))

    rng = factory.fresh(f"market:{cc}")
    plan = plan_country(country, config, rng)
    # Expansion-profile owners must have a state-owned flagship to attach
    # subsidiaries to; force the incumbent if needed.
    if (
        cc in config.expansion_profiles
        and cc not in config.no_state_ownership
        and not plan.operators[0].is_state_owned
    ):
        plan.operators[0].archetype = "state_direct"

    rng = factory.fresh(f"operators:{cc}")
    operators = [
        _build_operator(config, country, op_plan, i + 1, rng, forge, private_group_ids)
        for i, op_plan in enumerate(plan.operators)
    ]

    rng = factory.fresh(f"excluded:{cc}")
    excluded = _build_excluded(config, country, plan, rng, forge)

    rng = factory.fresh(f"tail:{cc}")
    tail = _build_tail(config, country, plan, rng, forge)

    return _CountryBundle(
        cc=cc, plan=plan, operators=operators, excluded=excluded, tail=tail
    )


def _plan_subsidiary(
    config: WorldConfig,
    parent_id: str,
    parent_brand: str,
    parent_cc: str,
    target: Country,
    rng,
    forge: NameForge,
) -> _SubsidiaryBundle:
    legal, brand = forge.subsidiary(parent_brand, target.name, target.rir)
    if parent_cc == "CO":
        role = OperatorRole.TRANSIT          # the Internexa archetype
    elif rng.random() < 0.6:
        role = OperatorRole.MOBILE
    else:
        role = OperatorRole.ACCESS
    founded_year = rng.randint(1998, 2018)
    stake_fraction = round(rng.uniform(0.51, 1.0), 3)
    if rng.random() < config.asnless_subsidiary_prob:
        # Registered for legal purposes only; runs no network of its own
        # (the China-Telecom-in-Brazil case).
        return _SubsidiaryBundle(
            target_cc=target.cc,
            parent_id=parent_id,
            name=legal,
            brand=brand,
            role=role,
            founded_year=founded_year,
            stake_fraction=stake_fraction,
            asnless=True,
        )
    # Foreign subsidiaries command a real access-market share, larger in
    # Africa (Ooredoo/Etisalat pattern, where the paper finds foreign
    # majorities in 6 countries), smaller elsewhere.
    if target.region == "Africa":
        share = rng.uniform(0.1, 0.65)
    else:
        share = rng.uniform(0.03, 0.22)
    if role is OperatorRole.TRANSIT:
        share *= 0.15
    # In big address-space markets even a successful foreign entrant is
    # a sliver of the announced space (China Telecom Americas in the US);
    # eyeball share is dampened less (Optus serves 18 % of Australians).
    addr_damp = (1.0, 1.0, 0.8, 0.25, 0.06, 0.02)[target.addr_class]
    eyeball_share = share * addr_damp**0.5
    share *= addr_damp
    budget_24s = config.addr_budget_by_class[target.addr_class]
    eyeball_budget = config.eyeball_budget_by_class[target.pop_class]
    sub_plan_siblings = rng.randint(*config.subsidiary_sibling_range)
    # The domestic market was already materialized against the full
    # budget, so hitting a *net* share of s requires allocating
    # s/(1-s) of the budget on top (s/(1-s) / (1 + s/(1-s)) == s).
    addr_grossup = share / max(1e-6, 1.0 - min(share, 0.85))
    eyeball_grossup = eyeball_share / max(1e-6, 1.0 - min(eyeball_share, 0.85))
    spec = _plan_asns(
        legal,
        role,
        target.cc,
        target.rir,
        sibling_count=sub_plan_siblings,
        addr_24s=max(1, round(addr_grossup * budget_24s)),
        eyeballs=round(eyeball_grossup * eyeball_budget * rng.uniform(0.8, 1.2)),
        rng=rng,
        forge=forge,
        unrelated_alias_prob=0.35,
    )
    return _SubsidiaryBundle(
        target_cc=target.cc,
        parent_id=parent_id,
        name=legal,
        brand=brand,
        role=role,
        founded_year=founded_year,
        stake_fraction=stake_fraction,
        asnless=False,
        addr_share=share,
        eyeball_share=eyeball_share,
        sibling_count=sub_plan_siblings,
        asn_spec=spec,
    )


def _build_expansion_task(state: dict, owner: dict) -> List[_SubsidiaryBundle]:
    """Plan one expansion-profile owner's foreign subsidiaries."""
    config: WorldConfig = state["config"]
    factory = SeedSequenceFactory(config.seed)
    rng = factory.fresh(f"expansion:{owner['owner_cc']}")
    forge = NameForge(factory.fresh(f"names:expansion:{owner['owner_cc']}"))
    bundles: List[_SubsidiaryBundle] = []
    for target_cc in owner["targets"]:
        bundles.append(
            _plan_subsidiary(
                config,
                owner["parent_id"],
                owner["parent_brand"],
                owner["parent_cc"],
                _COUNTRY_BY_CC[target_cc],
                rng,
                forge,
            )
        )
    return bundles


def _plan_country_wiring(state: _WiringScaffold, cc: str) -> _CountryWiring:
    """Plan one country's intra-topology edges on its own RNG substream.

    Within-country edge-existence checks are simulated against the local
    edge plan (the only same-country edges that can exist at wiring time
    are the ones this very plan creates); cross-country regional-export
    edges depend on other countries' gateways, so only their *draws* are
    made here — the selection itself replays serially at commit time, in
    country order, exactly like the old single-threaded wiring loop.
    """
    factory = SeedSequenceFactory(state.seed)
    rng = factory.fresh(f"topology:{cc}")
    country = _COUNTRY_BY_CC[cc]
    ops = state.ops_by_cc.get(cc, [])
    tier1_set = set(state.tier1_asns)
    carrier_set = set(state.intl_carriers.values())

    operator_primaries: List[Tuple[int, int, bool]] = []
    gateway_candidates: List[int] = []
    role_of: Dict[int, OperatorRole] = {}
    for op in ops:
        primary = op.asns[0]
        if primary in tier1_set:
            continue
        if op.role is OperatorRole.ENTERPRISE:
            continue
        role_of[primary] = op.role
        operator_primaries.append(
            (primary, op.primary_addresses, primary in carrier_set)
        )
        if op.role in (
            OperatorRole.TRANSIT, OperatorRole.CABLE, OperatorRole.INCUMBENT
        ):
            gateway_candidates.append(primary)

    if not operator_primaries:
        return _CountryWiring(cc, False, [], [], [])

    # Gateways: prefer explicit transit/cable operators, else incumbent.
    transit_gateways = [
        asn for asn in gateway_candidates
        if role_of[asn] in (OperatorRole.TRANSIT, OperatorRole.CABLE)
    ]
    gateways = transit_gateways or gateway_candidates[:1]

    intl_pool = list(state.tier1_asns) + [
        asn for ccx, asn in state.intl_carriers.items() if ccx != cc
    ]

    edges: List[Tuple[str, int, int]] = []
    local_pairs: Set[FrozenSet[int]] = set()

    def c2p(a: int, b: int) -> None:
        edges.append(("c2p", a, b))
        local_pairs.add(frozenset((a, b)))

    # Gateways buy international transit.
    for gateway in gateways:
        if gateway in carrier_set:
            continue  # already wired to tier-1s
        providers = rng.sample(intl_pool, k=min(len(intl_pool), rng.randint(1, 3)))
        for provider in providers:
            c2p(gateway, provider)

    transit_dominant = cc in state.transit_dominant
    gateway_set = set(gateways)

    # Operator primaries buy from gateways (transit-dominant) or mix in
    # direct international transit (open markets).
    for primary, _, is_carrier in operator_primaries:
        if primary in gateway_set or is_carrier:
            continue
        if transit_dominant or rng.random() < 0.5:
            for gateway in gateways[: rng.randint(1, max(1, len(gateways)))]:
                if gateway != primary:
                    c2p(primary, gateway)
            if not transit_dominant and rng.random() < 0.4:
                c2p(primary, rng.choice(intl_pool))
        else:
            providers = rng.sample(intl_pool, k=min(len(intl_pool), rng.randint(1, 2)))
            for provider in providers:
                c2p(primary, provider)
            if gateways and rng.random() < 0.3:
                if gateways[0] != primary:
                    c2p(primary, gateways[0])

    # Sibling ASNs hang off their operator's primary.
    for op in ops:
        for sibling in op.asns[1:]:
            c2p(sibling, op.asns[0])

    # Domestic peering among access operators (IXP effect).
    access_primaries = [
        p for p, _, _ in operator_primaries
        if role_of[p]
        in (OperatorRole.ACCESS, OperatorRole.MOBILE, OperatorRole.INCUMBENT)
    ]
    for i, a in enumerate(access_primaries):
        for b in access_primaries[i + 1:]:
            if rng.random() < 0.25 and frozenset((a, b)) not in local_pairs:
                edges.append(("p2p", a, b))
                local_pairs.add(frozenset((a, b)))

    # Long-tail networks buy from domestic operators.
    weights = [max(size, 1) for _, size, _ in operator_primaries]
    primaries_only = [p for p, _, _ in operator_primaries]
    for op in ops:
        if op.role is not OperatorRole.ENTERPRISE:
            continue
        for asn in op.asns:
            count = 1 if rng.random() < 0.7 else 2
            chosen = set()
            for _ in range(count):
                provider = rng.choices(primaries_only, weights=weights, k=1)[0]
                if provider != asn and provider not in chosen:
                    c2p(asn, provider)
                    chosen.add(provider)

    # Regional export: cable gateways pick up foreign customers in the
    # same region (Angola Cables / BSCCL cone growth).  Only the draws
    # happen here; the selection needs other countries' gateways.
    exports: List[Tuple[int, List[str]]] = []
    for gateway in gateways:
        if role_of[gateway] is not OperatorRole.CABLE:
            continue
        neighbors = [
            c.cc for c in COUNTRIES if c.region == country.region and c.cc != cc
        ]
        rng.shuffle(neighbors)
        exports.append((gateway, neighbors[: rng.randint(2, 6)]))

    return _CountryWiring(cc, True, gateways, edges, exports)


class WorldGenerator:
    """Builds a :class:`World` from a :class:`WorldConfig`.

    Pass an :class:`~repro.parallel.ExecutionContext` to fan the
    per-country planning phases out through its worker runtime; without
    one the same plan functions run inline.  Output is bit-identical
    either way.
    """

    def __init__(
        self,
        config: Optional[WorldConfig] = None,
        context=None,
    ) -> None:
        self.config = config or WorldConfig()
        self._context = context
        self._factory = SeedSequenceFactory(self.config.seed)
        self._forge = NameForge(self._factory.stream("names"))
        self._asn_alloc = ASNAllocator(self._factory.stream("asn"))
        self._ownership = OwnershipGraph()
        self._records: Dict[int, AsnRecord] = {}
        self._operator_asns: Dict[str, List[int]] = {}
        self._plans: Dict[str, CountryMarketPlan] = {}
        self._graph = ASGraph()
        self._addr_cursor = 1 << 24  # start allocating at 1.0.0.0
        self._op_counter: Dict[Tuple[str, str], int] = {}
        self._gateway_asns: Dict[str, List[int]] = {}
        self._primary_asn: Dict[str, int] = {}  # operator_id -> primary ASN
        self._tier1_asns: List[int] = []
        self._intl_carriers: Dict[str, int] = {}
        self._transit_dominant: Set[str] = set()
        self._private_groups: List[Entity] = []
        self._used_names: Set[str] = set()
        self._registered_owner: Dict[str, str] = {}  # name -> operator_id

    # -- public entry point ----------------------------------------------------
    def generate(self) -> World:
        """Materialize the full world (deterministic for a given config)."""
        with span("world.generate") as sp:
            with span("entities"):
                self._create_governments()
                self._create_private_groups()
                bundles = self._build_country_bundles()
                self._commit_plans(bundles)
                self._commit_operators(bundles)
                self._materialize_subsidiaries()
                self._commit_excluded(bundles)
                self._commit_tail(bundles)
            with span("topology"):
                self._build_tier1()
                self._build_topology()
                self._graph.validate()
                self._ownership.validate()
            with span("monitors"):
                monitors = MonitorSet.place(
                    self._graph,
                    self.config.monitor_count,
                    self._factory.stream("monitors"),
                )
            sp.incr("asns", len(self._records))
            sp.incr("operators", len(self._ownership.operators()))
            sp.incr("countries", len(COUNTRIES))
            sp.incr("monitors", len(monitors))
            sp.incr("transit_dominant_ccs", len(self._transit_dominant))
            metrics = get_metrics()
            metrics.incr("world.gen.operators", len(self._ownership.operators()))
            metrics.incr("world.gen.asns", len(self._records))
            metrics.incr("world.gen.edges", self._graph.num_edges())
        return World(
            config=self.config,
            countries=COUNTRIES,
            ownership=self._ownership,
            plans=self._plans,
            asn_records=self._records,
            operator_asns=self._operator_asns,
            graph=self._graph,
            monitors=monitors,
            tier1_asns=tuple(self._tier1_asns),
            international_carrier_asns=dict(self._intl_carriers),
            gateway_asns=self._gateway_asns,
            transit_dominant_ccs=set(self._transit_dominant),
        )

    # -- fan-out helper ------------------------------------------------------
    def _map(self, fn, items, state, label, shm_results=False):
        """Run the plan function over items: fanned out or inline."""
        if self._context is None:
            return [fn(state, item) for item in items]
        return self._context.map_ordered(
            fn, items, state=state, label=label, shm_results=shm_results
        )

    # -- id + name helpers ---------------------------------------------------
    def _next_phase_id(self, cc: str, phase: str) -> str:
        key = (cc, phase)
        self._op_counter[key] = self._op_counter.get(key, 0) + 1
        return f"op-{cc}-{phase}{self._op_counter[key]}"

    @staticmethod
    def _name_key(name: str) -> str:
        """Uniqueness key: the *normalized* form, the one source matching
        and the confirmation corpus fuse documents on.  Exact-string
        uniqueness is not enough — "Royal Telecom Ltd" and "Royal Telecom
        S.A." are the same organization to every downstream consumer."""
        return normalize_name(name) or name.lower()

    def _claim_name(self, name: str) -> str:
        """Reserve a globally unique display name (commit side).

        Per-country forges guarantee uniqueness only within one country;
        cross-country collisions get a deterministic distinguishing prefix
        (a numeric suffix would be stripped by name normalization and fuse
        the two organizations downstream anyway).
        """
        for candidate in self._dedup_candidates(name):
            key = self._name_key(candidate)
            if key not in self._used_names:
                self._used_names.add(key)
                if candidate != name:
                    get_metrics().incr("world.gen.renames")
                return candidate
        raise WorldError(f"could not uniquify name {name!r}")

    @staticmethod
    def _dedup_candidates(name: str):
        yield name
        # Rotate the pool by a name-derived offset: trying the pool in one
        # fixed order would concentrate thousands of renames on the first
        # word, recreating the single high-frequency token the pool exists
        # to avoid.  crc32 is stable across runs and platforms (hash() is
        # salted per process), so generation stays deterministic.
        count = len(_SALT_WORDS)
        start = zlib.crc32(name.encode("utf-8")) % count
        for step in range(count):
            yield f"{_SALT_WORDS[(start + step) % count]} {name}"
        for step in range(count):
            first = _SALT_WORDS[(start + step) % count]
            for gap in range(1, count):
                second = _SALT_WORDS[(start + step + gap) % count]
                yield f"{first} {second} {name}"

    def _commit_entity(self, entity: Entity, renames: Dict[str, str]) -> None:
        """Add an entity, enforcing global name/brand uniqueness in place."""
        original = entity.name
        unique = self._claim_name(original)
        if unique != original:
            entity.name = unique
            renames[original] = unique
        if isinstance(entity, Operator) and entity.brand:
            brand = self._claim_name(entity.brand)
            if brand != entity.brand:
                entity.brand = brand
                entity.website = f"{brand.lower().replace(' ', '')}.example"
        self._ownership.add_entity(entity)

    def _claim_registered(self, name: str, operator: Operator) -> str:
        """Keep WHOIS registered names unique *across operators*.

        Name-based source matching treats a normalized-name match as one
        organization, so two unrelated operators sharing an alias would be
        fused downstream.  An operator's own (already unique) name and its
        aliases may recur across its sibling ASNs; any cross-operator
        collision gets the same deterministic prefix entity names get.
        """
        if name == operator.name:
            return name
        for candidate in self._dedup_candidates(name):
            key = self._name_key(candidate)
            owner = self._registered_owner.get(key)
            if owner == operator.entity_id:
                return candidate
            if owner is None and key not in self._used_names:
                self._registered_owner[key] = operator.entity_id
                self._used_names.add(key)
                if candidate != name:
                    get_metrics().incr("world.gen.renames")
                return candidate
        raise WorldError(f"could not uniquify registered name {name!r}")

    # -- step 1: governments and private groups --------------------------------
    def _create_governments(self) -> None:
        for country in COUNTRIES:
            self._commit_entity(
                Entity(
                    entity_id=f"gov-{country.cc}",
                    kind=EntityKind.GOVERNMENT,
                    name=f"Government of {country.name}",
                    cc=country.cc,
                ),
                {},
            )

    def _create_private_groups(self) -> None:
        rng = self._factory.stream("private-groups")
        for i, cc in enumerate(_PRIVATE_GROUP_HOME_CCS):
            group = Entity(
                entity_id=f"group-{i}",
                kind=EntityKind.PRIVATE,
                name=self._forge.unrelated_legal_name("ARIN"),
                cc=cc,
            )
            self._commit_entity(group, {})
            self._private_groups.append(group)
        # A generic dispersed-float shareholder used where no named private
        # owner is needed.
        rng.random()  # keep the stream warm for future extensions

    # -- step 2+3+5+6: per-country planning fan-out -----------------------------
    def _build_country_bundles(self) -> List[_CountryBundle]:
        """Plan every country, fanned out in bounded shards.

        The planning function is pure per country (each country draws from
        its own seed stream), so mapping shard by shard and concatenating
        yields exactly the bundle list a single full-width map produces —
        while per-shard fan-out bounds the number of in-flight plan
        payloads at internet scale.  Commit order (and therefore every
        coordinator-side RNG draw) is unchanged: commits happen over the
        full concatenated list, after all shards return.
        """
        state = {
            "config": self.config,
            "private_groups": [g.entity_id for g in self._private_groups],
        }
        ccs = [c.cc for c in COUNTRIES]
        shard_size = max(1, int(os.environ.get("REPRO_SHARD_COUNTRIES", "32")))
        with span("world.countries") as sp:
            bundles: List[_CountryBundle] = []
            for i in range(0, len(ccs), shard_size):
                shard = ccs[i : i + shard_size]
                bundles.extend(
                    self._map(_build_country_task, shard, state, "world.countries")
                )
            sp.incr("countries", len(bundles))
            if len(ccs) > shard_size:
                sp.incr("shards", -(-len(ccs) // shard_size))
        get_metrics().incr("world.gen.countries", len(bundles))
        return bundles

    def _commit_plans(self, bundles: List[_CountryBundle]) -> None:
        for bundle in bundles:
            if bundle.plan.transit_dominant:
                self._transit_dominant.add(bundle.cc)
            self._plans[bundle.cc] = bundle.plan

    def _commit_operators(self, bundles: List[_CountryBundle]) -> None:
        for bundle in bundles:
            for op_bundle in bundle.operators:
                self._commit_operator_bundle(op_bundle)

    def _commit_excluded(self, bundles: List[_CountryBundle]) -> None:
        for bundle in bundles:
            for op_bundle in bundle.excluded:
                self._commit_operator_bundle(op_bundle)

    def _commit_tail(self, bundles: List[_CountryBundle]) -> None:
        for bundle in bundles:
            for op_bundle in bundle.tail:
                self._commit_operator_bundle(op_bundle)

    def _commit_operator_bundle(self, bundle: _OperatorBundle) -> None:
        renames: Dict[str, str] = {}
        operator: Optional[Operator] = None
        for entity in bundle.entities:
            self._commit_entity(entity, renames)
            if entity.entity_id == bundle.operator_id:
                operator = entity  # type: ignore[assignment]
        for stake in bundle.stakes:
            self._ownership.add_stake(stake)
        assert operator is not None
        if bundle.asn_spec is None:
            self._operator_asns[operator.entity_id] = []
            return
        self._commit_asns(operator, bundle.asn_spec, renames)

    # -- ASN + prefix + eyeball allocation ----------------------------------------
    def _allocate_block(self, num_slash24: int) -> List[Tuple[int, int]]:
        """Allocate non-overlapping aligned prefixes totalling ``num_slash24``
        /24-equivalents; returns (base, length) tuples."""
        prefixes: List[Tuple[int, int]] = []
        remaining = max(1, num_slash24)
        while remaining > 0:
            size = 1 << (remaining.bit_length() - 1)  # largest power of two
            addresses = size * 256
            # Align the cursor to the block size.
            if self._addr_cursor % addresses:
                self._addr_cursor += addresses - (self._addr_cursor % addresses)
            length = 24 - (size.bit_length() - 1)
            prefixes.append((self._addr_cursor, length))
            self._addr_cursor += addresses
            remaining -= size
        return prefixes

    def _commit_asns(
        self,
        operator: Operator,
        spec: _AsnSpec,
        renames: Dict[str, str],
    ) -> None:
        """Replay a worker-drawn ASN plan against the shared allocator.

        Allocation depends only on *commit order* (the allocator pools are
        pre-shuffled and consume no RNG), so replaying bundles in country
        order reproduces the serial allocation exactly.  Registered names
        that exactly match a renamed entity name follow the rename, so the
        WHOIS surface stays consistent with the ownership records.
        """
        asns = self._asn_alloc.allocate_many(spec.rir, len(spec.share_24s))
        self._operator_asns[operator.entity_id] = asns
        self._primary_asn[operator.entity_id] = asns[0]
        for i, asn in enumerate(asns):
            prefixes = self._allocate_block(spec.share_24s[i])
            name = spec.registered[i]
            name = renames.get(name, name)
            record = AsnRecord(
                asn=asn,
                operator_id=operator.entity_id,
                cc=spec.cc,
                rir=spec.rir,
                registered_name=self._claim_registered(name, operator),
                role=spec.role,
                prefixes=prefixes,
                eyeballs=spec.eyeballs[i],
            )
            self._records[asn] = record
        if spec.more_specific and len(asns) > 1:
            donor = self._records[asns[0]]
            wide = next(((b, l) for b, l in donor.prefixes if l <= 22), None)
            if wide is not None:
                base, _ = wide
                self._records[asns[1]].prefixes.append((base, 24))

    def _register_asns(
        self,
        operator: Operator,
        cc: str,
        rir: str,
        sibling_count: int,
        addr_24s: int,
        eyeballs: int,
        rng,
        unrelated_alias_prob: float = 0.0,
    ) -> None:
        """Serial-phase delegation (tier-1 carriers): plan + commit inline."""
        spec = _plan_asns(
            operator.name,
            operator.role,
            cc,
            rir,
            sibling_count=sibling_count,
            addr_24s=addr_24s,
            eyeballs=eyeballs,
            rng=rng,
            forge=self._forge,
            unrelated_alias_prob=unrelated_alias_prob,
        )
        self._commit_asns(operator, spec, {})

    # -- step 4: foreign subsidiaries --------------------------------------------
    def _flagship_map(self) -> Dict[str, str]:
        """Per country, the domestically state-controlled operator with the
        most address space — one ``assess_all`` fixpoint and one scan,
        instead of the old per-owner recomputation (which dominated the
        serial generation profile)."""
        assessments = self._ownership.assess_all()
        best: Dict[str, Tuple[int, str]] = {}
        for op in self._ownership.operators():
            verdict = assessments[op.entity_id]
            if verdict.controlling_cc != op.cc:
                continue
            size = sum(
                self._records[a].num_addresses
                for a in self._operator_asns.get(op.entity_id, [])
            )
            current = best.get(op.cc)
            if current is None or size > current[0]:
                best[op.cc] = (size, op.entity_id)
        return {cc: op_id for cc, (_, op_id) in best.items()}

    def _materialize_subsidiaries(self) -> None:
        flagships = self._flagship_map()
        owners: List[dict] = []
        for owner_cc, targets in self.config.expansion_profiles.items():
            if owner_cc not in _COUNTRY_BY_CC:
                continue
            parent_id = flagships.get(owner_cc)
            if parent_id is None:
                continue
            parent = self._ownership.entity(parent_id)
            owners.append(
                {
                    "owner_cc": owner_cc,
                    "parent_id": parent_id,
                    "parent_brand": parent.display_name,
                    "parent_cc": parent.cc,
                    "targets": [
                        target_cc for target_cc in targets
                        if target_cc in _COUNTRY_BY_CC
                    ],
                }
            )
        state = {"config": self.config}
        with span("world.expansion") as sp:
            bundle_lists = self._map(
                _build_expansion_task, owners, state, "world.expansion"
            )
            count = sum(len(bundles) for bundles in bundle_lists)
            sp.incr("subsidiaries", count)
        get_metrics().incr("world.gen.subsidiaries", count)
        for bundles in bundle_lists:
            for sub in bundles:
                self._commit_subsidiary(sub)

    def _commit_subsidiary(self, sub: _SubsidiaryBundle) -> None:
        renames: Dict[str, str] = {}
        operator = Operator(
            entity_id=self._next_phase_id(sub.target_cc, "s"),
            kind=EntityKind.OPERATOR,
            name=sub.name,
            cc=sub.target_cc,
            brand=sub.brand,
            role=sub.role,
            scope=OperatorScope.NATIONAL,
            founded_year=sub.founded_year,
            website=f"{sub.brand.lower().replace(' ', '')}.example",
        )
        self._commit_entity(operator, renames)
        self._ownership.add_stake(
            OwnershipStake(sub.parent_id, operator.entity_id, sub.stake_fraction)
        )
        if sub.asnless:
            self._operator_asns[operator.entity_id] = []
            return
        # Make room by shrinking the domestic operators' recorded shares.
        plan = self._plans[sub.target_cc]
        for op_plan in plan.operators:
            op_plan.addr_share *= 1.0 - sub.addr_share
            op_plan.eyeball_share *= 1.0 - sub.addr_share
        assert sub.asn_spec is not None
        self._commit_asns(operator, sub.asn_spec, renames)
        plan.operators.append(
            OperatorPlan(
                role=sub.role,
                archetype="foreign_subsidiary",
                addr_share=sub.addr_share,
                eyeball_share=sub.eyeball_share,
                sibling_count=sub.sibling_count,
            )
        )

    # -- step 7: tier-1 carriers ------------------------------------------------------
    def _build_tier1(self) -> None:
        rng = self._factory.stream("tier1")
        for i, cc in enumerate(_TIER1_HOME_CCS):
            legal, brand = self._forge.transit_operator(
                f"Backbone {i + 1}", "ARIN" if cc == "US" else "RIPE"
            )
            country = _COUNTRY_BY_CC[cc]
            operator = Operator(
                entity_id=self._next_phase_id(cc, "b"),
                kind=EntityKind.OPERATOR,
                name=legal,
                cc=cc,
                brand=brand,
                role=OperatorRole.TRANSIT,
                scope=OperatorScope.NATIONAL,
                founded_year=rng.randint(1988, 2000),
                website=f"{brand.lower().replace(' ', '')}.example",
            )
            self._commit_entity(operator, {})
            self._register_asns(
                operator,
                cc,
                country.rir,
                sibling_count=1,
                addr_24s=rng.randint(20, 80),
                eyeballs=0,
                rng=rng,
            )
            self._tier1_asns.append(self._primary_asn[operator.entity_id])

    # -- step 8: topology --------------------------------------------------------------
    def _build_topology(self) -> None:
        rng = self._factory.stream("topology")
        graph = self._graph
        for asn in self._records:
            graph.add_as(asn)
        # Tier-1 full mesh.
        for i, a in enumerate(self._tier1_asns):
            for b in self._tier1_asns[i + 1:]:
                graph.add_p2p(a, b)

        # International carriers: the flagship state carrier of selected
        # countries acts as cross-border transit.
        flagships = self._flagship_map()
        for cc in INTERNATIONAL_CARRIER_CCS:
            flagship = flagships.get(cc)
            if flagship is None:
                continue
            carrier_asn = self._primary_asn[flagship]
            self._intl_carriers[cc] = carrier_asn
            for provider in rng.sample(self._tier1_asns, k=2):
                graph.add_c2p(carrier_asn, provider)
            for other_cc, other_asn in self._intl_carriers.items():
                if other_cc != cc and rng.random() < 0.4:
                    graph.add_p2p(carrier_asn, other_asn)

        carrier_asns = set(self._intl_carriers.values())
        scaffold = self._wiring_scaffold()
        ccs = [c.cc for c in COUNTRIES]
        with span("world.wiring") as sp:
            plans = self._map(
                _plan_country_wiring, ccs, scaffold, "world.wiring", shm_results=True
            )
            sp.incr("edges", sum(len(wiring.edges) for wiring in plans))
        for wiring in plans:
            self._commit_wiring(wiring, carrier_asns)

    def _wiring_scaffold(self) -> _WiringScaffold:
        """Snapshot the read-only context the wiring workers need."""
        ops_by_cc: Dict[str, List[_OpWire]] = {}
        for op in self._ownership.operators():
            asns = self._operator_asns.get(op.entity_id, [])
            if not asns:
                continue
            ops_by_cc.setdefault(op.cc, []).append(
                _OpWire(
                    asns=tuple(asns),
                    role=op.role,
                    primary_addresses=self._records[asns[0]].num_addresses,
                )
            )
        return _WiringScaffold(
            seed=self.config.seed,
            tier1_asns=tuple(self._tier1_asns),
            intl_carriers=dict(self._intl_carriers),
            transit_dominant=frozenset(self._transit_dominant),
            ops_by_cc=ops_by_cc,
        )

    def _commit_wiring(self, wiring: _CountryWiring, carrier_asns: Set[int]) -> None:
        """Apply one country's planned edges, then resolve its exports.

        Commit runs in country order, so a regional export from country
        *i* only ever sees gateways of countries committed before it —
        the same visibility the old serial wiring loop had.
        """
        if not wiring.has_operators:
            return
        graph = self._graph
        for kind, a, b in wiring.edges:
            if kind == "c2p":
                graph.add_c2p(a, b)
            else:
                graph.add_p2p(a, b)
        self._gateway_asns[wiring.cc] = wiring.gateways
        for gateway, neighbor_ccs in wiring.exports:
            for neighbor_cc in neighbor_ccs:
                for foreign_gateway in self._gateway_asns.get(neighbor_cc, []):
                    if (
                        foreign_gateway != gateway
                        and foreign_gateway not in carrier_asns
                        # Never chain cable gateways under each other: a
                        # triangle of such edges would create a c2p cycle.
                        and self._records[foreign_gateway].role
                        is not OperatorRole.CABLE
                        and graph.relationship(foreign_gateway, gateway) is None
                    ):
                        graph.add_c2p(foreign_gateway, gateway)
                        break
