"""The synthetic ground-truth world generator.

Materializes a full world from a :class:`~repro.config.WorldConfig`:

* governments, funds, holdings, private groups and operator companies with
  equity stakes reproducing the ownership archetypes of the paper;
* foreign subsidiaries following the configured expansion profiles;
* ASN delegations with realistic registered names (including stale and
  unrelated local aliases);
* IPv4 prefixes and eyeball populations sized by country;
* a valley-free AS-level topology (tier-1 clique, international carriers,
  country gateways, domestic operators, sibling ASNs, long-tail networks);
* a set of BGP monitors.

Everything is deterministic given the config's seed.  The derived data
sources (:mod:`repro.sources`) and the classification pipeline only see
noisy projections of this world; the world itself is the scoring oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config import WorldConfig
from repro.errors import WorldError
from repro.net.asn import ASNAllocator
from repro.net.monitors import MonitorSet, RouteCollector
from repro.net.prefix import Prefix, summarize_address_counts
from repro.net.topology import ASGraph
from repro.obs import span
from repro.rng import SeedSequenceFactory
from repro.text.names import NameForge
from repro.world.countries import COUNTRIES, Country
from repro.world.entities import (
    AsnRecord,
    Entity,
    EntityKind,
    Operator,
    OperatorRole,
    OperatorScope,
    OwnershipStake,
)
from repro.world.markets import CountryMarketPlan, OperatorPlan, plan_country
from repro.world.ownership import OwnershipGraph

__all__ = ["World", "WorldGenerator", "GroundTruthOperator"]

#: Countries whose flagship state carrier acts as an international transit
#: provider (big customer cones — the Table 5 archetypes: SingTel,
#: Rostelecom, China Telecom, Angola Cables, Internexa, Swisscom, Exatel,
#: BSCCL...).
INTERNATIONAL_CARRIER_CCS: Tuple[str, ...] = (
    "SG", "RU", "CN", "AO", "CO", "CH", "PL", "BD", "QA", "AE", "NO", "MY",
)

#: Advanced economies hosting the private global tier-1 carriers.
_TIER1_HOME_CCS: Tuple[str, ...] = (
    "US", "US", "US", "GB", "DE", "FR", "JP", "NL", "SE", "IT",
)

#: Private multinational groups (America-Movil-style) that own operators in
#: several countries; they create the Orbis false-positive surface.
_PRIVATE_GROUP_HOME_CCS: Tuple[str, ...] = ("MX", "ES", "GB", "IN", "FR", "ZA")


@dataclass
class GroundTruthOperator:
    """One confirmed-by-construction state-owned Internet operator."""

    operator: Operator
    controlling_cc: str
    is_foreign_subsidiary: bool
    parent_operator_id: Optional[str]
    asns: Tuple[int, ...]


@dataclass
class World:
    """A fully materialized synthetic world (the scoring oracle)."""

    config: WorldConfig
    countries: Tuple[Country, ...]
    ownership: OwnershipGraph
    plans: Dict[str, CountryMarketPlan]
    asn_records: Dict[int, AsnRecord]
    operator_asns: Dict[str, List[int]]
    graph: ASGraph
    monitors: MonitorSet
    tier1_asns: Tuple[int, ...]
    international_carrier_asns: Dict[str, int]   # cc -> carrier ASN
    gateway_asns: Dict[str, List[int]]            # cc -> gateway ASNs
    transit_dominant_ccs: Set[str]
    _collector: Optional[RouteCollector] = field(default=None, repr=False)
    _truth_cache: Optional[List[GroundTruthOperator]] = field(
        default=None, repr=False
    )

    # -- derived views -------------------------------------------------------
    @property
    def collector(self) -> RouteCollector:
        """Lazy route collector over the world's monitors."""
        if self._collector is None:
            self._collector = RouteCollector(self.graph, self.monitors)
        return self._collector

    def operators(self) -> List[Operator]:
        return self.ownership.operators()

    def operator(self, operator_id: str) -> Operator:
        entity = self.ownership.entity(operator_id)
        if not isinstance(entity, Operator):
            raise WorldError(f"{operator_id} is not an operator")
        return entity

    def records_of(self, operator_id: str) -> List[AsnRecord]:
        return [self.asn_records[a] for a in self.operator_asns.get(operator_id, [])]

    def prefix_table(self) -> List[Tuple[Prefix, int]]:
        """All announced (prefix, origin ASN) pairs."""
        table: List[Tuple[Prefix, int]] = []
        for record in self.asn_records.values():
            for base, length in record.prefixes:
                table.append((Prefix(base, length), record.asn))
        return table

    def true_address_counts(self) -> Dict[int, int]:
        """De-duplicated announced address count per origin ASN (one
        post-order trie pass over the full announcement table)."""
        return summarize_address_counts(self.prefix_table())

    def country_of_asn(self, asn: int) -> str:
        return self.asn_records[asn].cc

    # -- ground truth --------------------------------------------------------
    def ground_truth(self) -> List[GroundTruthOperator]:
        """All operators meeting the paper's state-owned definition (§3):
        majority state control, national scope, unrestricted services."""
        if self._truth_cache is not None:
            return self._truth_cache
        assessments = self.ownership.assess_all()
        truth: List[GroundTruthOperator] = []
        for op in self.ownership.operators():
            verdict = assessments[op.entity_id]
            if not verdict.is_state_controlled:
                continue
            if op.scope is not OperatorScope.NATIONAL:
                continue
            if not op.offers_unrestricted_service:
                continue
            controlling = verdict.controlling_cc
            assert controlling is not None
            foreign = controlling != op.cc
            parent = self.ownership.majority_parent(op.entity_id)
            parent_id = (
                parent.entity_id
                if parent is not None and isinstance(parent, Operator)
                else None
            )
            truth.append(
                GroundTruthOperator(
                    operator=op,
                    controlling_cc=controlling,
                    is_foreign_subsidiary=foreign,
                    parent_operator_id=parent_id,
                    asns=tuple(self.operator_asns.get(op.entity_id, ())),
                )
            )
        self._truth_cache = truth
        return truth

    def ground_truth_asns(self) -> Set[int]:
        """The true set of state-owned ASNs."""
        return {asn for gto in self.ground_truth() for asn in gto.asns}

    def ground_truth_operator_ids(self) -> Set[str]:
        return {gto.operator.entity_id for gto in self.ground_truth()}

    def foreign_subsidiary_asns(self) -> Set[int]:
        return {
            asn
            for gto in self.ground_truth()
            if gto.is_foreign_subsidiary
            for asn in gto.asns
        }

    def minority_operator_ids(self) -> Set[str]:
        """Operators with a sub-threshold government stake (and no majority)."""
        assessments = self.ownership.assess_all()
        result: Set[str] = set()
        for op in self.ownership.operators():
            verdict = assessments[op.entity_id]
            if verdict.is_state_controlled:
                continue
            if verdict.minority_stakes():
                result.add(op.entity_id)
        return result

    def state_owned_countries(self) -> Set[str]:
        """Countries that majority-own at least one Internet operator."""
        return {gto.controlling_cc for gto in self.ground_truth()}


class WorldGenerator:
    """Builds a :class:`World` from a :class:`WorldConfig`."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        self._factory = SeedSequenceFactory(self.config.seed)
        self._forge = NameForge(self._factory.stream("names"))
        self._asn_alloc = ASNAllocator(self._factory.stream("asn"))
        self._ownership = OwnershipGraph()
        self._records: Dict[int, AsnRecord] = {}
        self._operator_asns: Dict[str, List[int]] = {}
        self._plans: Dict[str, CountryMarketPlan] = {}
        self._graph = ASGraph()
        self._addr_cursor = 1 << 24  # start allocating at 1.0.0.0
        self._op_counter: Dict[str, int] = {}
        self._gateway_asns: Dict[str, List[int]] = {}
        self._primary_asn: Dict[str, int] = {}  # operator_id -> primary ASN
        self._tier1_asns: List[int] = []
        self._intl_carriers: Dict[str, int] = {}
        self._transit_dominant: Set[str] = set()
        self._private_groups: List[Entity] = []

    # -- public entry point ----------------------------------------------------
    def generate(self) -> World:
        """Materialize the full world (deterministic for a given config)."""
        with span("world.generate") as sp:
            with span("entities"):
                self._create_governments()
                self._create_private_groups()
                self._plan_markets()
                self._materialize_operators()
                self._materialize_subsidiaries()
                self._materialize_excluded_and_subnational()
                self._materialize_tail()
            with span("topology"):
                self._build_tier1()
                self._build_topology()
                self._graph.validate()
                self._ownership.validate()
            with span("monitors"):
                monitors = MonitorSet.place(
                    self._graph,
                    self.config.monitor_count,
                    self._factory.stream("monitors"),
                )
            sp.incr("asns", len(self._records))
            sp.incr("operators", len(self._ownership.operators()))
            sp.incr("countries", len(COUNTRIES))
            sp.incr("monitors", len(monitors))
            sp.incr("transit_dominant_ccs", len(self._transit_dominant))
        return World(
            config=self.config,
            countries=COUNTRIES,
            ownership=self._ownership,
            plans=self._plans,
            asn_records=self._records,
            operator_asns=self._operator_asns,
            graph=self._graph,
            monitors=monitors,
            tier1_asns=tuple(self._tier1_asns),
            international_carrier_asns=dict(self._intl_carriers),
            gateway_asns=self._gateway_asns,
            transit_dominant_ccs=set(self._transit_dominant),
        )

    # -- id helpers ----------------------------------------------------------
    def _next_op_id(self, cc: str) -> str:
        self._op_counter[cc] = self._op_counter.get(cc, 0) + 1
        return f"op-{cc}-{self._op_counter[cc]}"

    # -- step 1: governments and private groups --------------------------------
    def _create_governments(self) -> None:
        for country in COUNTRIES:
            self._ownership.add_entity(
                Entity(
                    entity_id=f"gov-{country.cc}",
                    kind=EntityKind.GOVERNMENT,
                    name=f"Government of {country.name}",
                    cc=country.cc,
                )
            )

    def _create_private_groups(self) -> None:
        rng = self._factory.stream("private-groups")
        for i, cc in enumerate(_PRIVATE_GROUP_HOME_CCS):
            group = Entity(
                entity_id=f"group-{i}",
                kind=EntityKind.PRIVATE,
                name=self._forge.unrelated_legal_name("ARIN"),
                cc=cc,
            )
            self._ownership.add_entity(group)
            self._private_groups.append(group)
        # A generic dispersed-float shareholder used where no named private
        # owner is needed.
        rng.random()  # keep the stream warm for future extensions

    # -- step 2: market plans -----------------------------------------------------
    def _plan_markets(self) -> None:
        for country in COUNTRIES:
            rng = self._factory.fresh(f"market:{country.cc}")
            plan = plan_country(country, self.config, rng)
            # Expansion-profile owners must have a state-owned flagship to
            # attach subsidiaries to; force the incumbent if needed.
            if (
                country.cc in self.config.expansion_profiles
                and country.cc not in self.config.no_state_ownership
                and not plan.operators[0].is_state_owned
            ):
                plan.operators[0].archetype = "state_direct"
            if plan.transit_dominant:
                self._transit_dominant.add(country.cc)
            self._plans[country.cc] = plan

    # -- step 3: operators ---------------------------------------------------------
    def _materialize_operators(self) -> None:
        for country in COUNTRIES:
            plan = self._plans[country.cc]
            rng = self._factory.fresh(f"operators:{country.cc}")
            for op_plan in plan.operators:
                self._materialize_operator(country, op_plan, rng)

    def _materialize_operator(
        self, country: Country, op_plan: OperatorPlan, rng
    ) -> Operator:
        if op_plan.misleading_name:
            legal, brand = self._forge.misleading_private_name(country.name)
        elif op_plan.role is OperatorRole.INCUMBENT:
            legal, brand = self._forge.incumbent(country.name, country.rir)
        elif op_plan.role in (OperatorRole.TRANSIT, OperatorRole.CABLE):
            legal, brand = self._forge.transit_operator(country.name, country.rir)
        else:
            legal, brand = self._forge.challenger(country.name, country.rir)
        operator = Operator(
            entity_id=self._next_op_id(country.cc),
            kind=EntityKind.OPERATOR,
            name=legal,
            cc=country.cc,
            brand=brand,
            role=op_plan.role,
            scope=OperatorScope.NATIONAL,
            founded_year=rng.randint(1985, 2015),
            website=f"{brand.lower().replace(' ', '')}.example",
        )
        self._ownership.add_entity(operator)
        self._attach_ownership(operator, op_plan.archetype, country, rng)
        self._allocate_asns(operator, op_plan, country, rng)
        return operator

    def _attach_ownership(
        self, operator: Operator, archetype: str, country: Country, rng
    ) -> None:
        gov_id = f"gov-{country.cc}"
        if archetype == "state_direct":
            fraction = rng.uniform(0.51, 1.0)
            self._ownership.add_stake(
                OwnershipStake(gov_id, operator.entity_id, round(fraction, 3))
            )
        elif archetype == "state_funds":
            # 2-3 funds, each a minority holder; their aggregate confers
            # control (Telekom Malaysia pattern).
            fund_count = rng.randint(2, 3)
            target_total = rng.uniform(0.52, 0.72)
            cuts = sorted(rng.random() for _ in range(fund_count - 1))
            shares = [
                (b - a) * target_total
                for a, b in zip([0.0] + cuts, cuts + [1.0])
            ]
            for i, share in enumerate(shares):
                fund = Entity(
                    entity_id=f"fund-{country.cc}-{operator.entity_id}-{i}",
                    kind=EntityKind.STATE_FUND,
                    name=self._forge.fund(country.name),
                    cc=country.cc,
                )
                self._ownership.add_entity(fund)
                self._ownership.add_stake(
                    OwnershipStake(gov_id, fund.entity_id, round(rng.uniform(0.7, 1.0), 3))
                )
                self._ownership.add_stake(
                    OwnershipStake(
                        fund.entity_id, operator.entity_id,
                        round(min(share, 0.49), 3),
                    )
                )
        elif archetype == "state_holding":
            holding = Entity(
                entity_id=f"hold-{country.cc}-{operator.entity_id}",
                kind=EntityKind.HOLDING,
                name=f"{country.name} Telecommunications Holding",
                cc=country.cc,
            )
            self._ownership.add_entity(holding)
            self._ownership.add_stake(
                OwnershipStake(gov_id, holding.entity_id, round(rng.uniform(0.55, 1.0), 3))
            )
            self._ownership.add_stake(
                OwnershipStake(
                    holding.entity_id, operator.entity_id,
                    round(rng.uniform(0.51, 0.95), 3),
                )
            )
        elif archetype == "state_jv":
            partner = rng.choice([c for c in COUNTRIES if c.cc != country.cc])
            major = rng.uniform(0.51, 0.7)
            minor = rng.uniform(0.1, min(0.3, 0.99 - major))
            self._ownership.add_stake(
                OwnershipStake(gov_id, operator.entity_id, round(major, 3))
            )
            self._ownership.add_stake(
                OwnershipStake(
                    f"gov-{partner.cc}", operator.entity_id, round(minor, 3)
                )
            )
        elif archetype == "minority":
            fraction = rng.uniform(0.08, 0.45)
            self._ownership.add_stake(
                OwnershipStake(gov_id, operator.entity_id, round(fraction, 3))
            )
        elif archetype == "private":
            if self._private_groups and rng.random() < 0.22:
                group = rng.choice(self._private_groups)
                self._ownership.add_stake(
                    OwnershipStake(
                        group.entity_id, operator.entity_id,
                        round(rng.uniform(0.51, 1.0), 3),
                    )
                )
        else:
            raise WorldError(f"unknown ownership archetype {archetype!r}")

    # -- ASN + prefix + eyeball allocation ----------------------------------------
    def _allocate_block(self, num_slash24: int) -> List[Tuple[int, int]]:
        """Allocate non-overlapping aligned prefixes totalling ``num_slash24``
        /24-equivalents; returns (base, length) tuples."""
        prefixes: List[Tuple[int, int]] = []
        remaining = max(1, num_slash24)
        while remaining > 0:
            size = 1 << (remaining.bit_length() - 1)  # largest power of two
            addresses = size * 256
            # Align the cursor to the block size.
            if self._addr_cursor % addresses:
                self._addr_cursor += addresses - (self._addr_cursor % addresses)
            length = 24 - (size.bit_length() - 1)
            prefixes.append((self._addr_cursor, length))
            self._addr_cursor += addresses
            remaining -= size
        return prefixes

    def _allocate_asns(
        self, operator: Operator, op_plan: OperatorPlan, country: Country, rng
    ) -> None:
        budget_24s = self.config.addr_budget_by_class[country.addr_class]
        addr_24s = max(1, round(op_plan.addr_share * budget_24s))
        eyeballs_total = round(
            op_plan.eyeball_share
            * self.config.eyeball_budget_by_class[country.pop_class]
        )
        self._register_asns(
            operator,
            country.cc,
            country.rir,
            sibling_count=op_plan.sibling_count,
            addr_24s=addr_24s,
            eyeballs=eyeballs_total,
            rng=rng,
        )

    def _register_asns(
        self,
        operator: Operator,
        cc: str,
        rir: str,
        sibling_count: int,
        addr_24s: int,
        eyeballs: int,
        rng,
        unrelated_alias_prob: float = 0.0,
    ) -> None:
        asns = self._asn_alloc.allocate_many(rir, sibling_count)
        self._operator_asns[operator.entity_id] = asns
        self._primary_asn[operator.entity_id] = asns[0]
        # The primary ASN gets the bulk of the address space and users.
        if sibling_count == 1:
            weights = [1.0]
        else:
            primary_weight = rng.uniform(0.55, 0.85)
            rest = [rng.random() + 0.1 for _ in range(sibling_count - 1)]
            rest_total = sum(rest)
            weights = [primary_weight] + [
                (1 - primary_weight) * r / rest_total for r in rest
            ]
        for i, (asn, weight) in enumerate(zip(asns, weights)):
            share_24s = max(1, round(addr_24s * weight))
            prefixes = self._allocate_block(share_24s)
            if i == 0:
                registered = operator.name
            elif rng.random() < unrelated_alias_prob:
                registered = self._forge.unrelated_legal_name(rir)
            elif rng.random() < 0.26:
                # Sibling from an acquisition keeps the acquired legal name.
                registered = self._forge.unrelated_legal_name(rir)
            elif rng.random() < 0.3:
                registered = self._forge.stale_variant(operator.name)
            else:
                registered = operator.name
            record = AsnRecord(
                asn=asn,
                operator_id=operator.entity_id,
                cc=cc,
                rir=rir,
                registered_name=registered,
                role=operator.role,
                prefixes=prefixes,
                eyeballs=round(eyeballs * weight),
            )
            self._records[asn] = record
        # Occasionally announce a more-specific /24 out of a sibling ASN,
        # exercising the more-specific de-duplication everywhere downstream.
        if len(asns) > 1 and rng.random() < 0.25:
            donor = self._records[asns[0]]
            wide = next(
                ((b, l) for b, l in donor.prefixes if l <= 22), None
            )
            if wide is not None:
                base, _ = wide
                self._records[asns[1]].prefixes.append((base, 24))

    # -- step 4: foreign subsidiaries --------------------------------------------
    def _materialize_subsidiaries(self) -> None:
        by_cc = {c.cc: c for c in COUNTRIES}
        for owner_cc, targets in self.config.expansion_profiles.items():
            if owner_cc not in by_cc:
                continue
            rng = self._factory.fresh(f"expansion:{owner_cc}")
            parent_id = self._flagship_state_operator(owner_cc)
            if parent_id is None:
                continue
            parent = self._ownership.entity(parent_id)
            for target_cc in targets:
                target = by_cc.get(target_cc)
                if target is None:
                    continue
                self._materialize_one_subsidiary(parent, target, rng)

    def _flagship_state_operator(self, cc: str) -> Optional[str]:
        """The state-owned operator with the most address space in ``cc``."""
        assessments = self._ownership.assess_all()
        best: Optional[str] = None
        best_size = -1
        for op in self._ownership.operators():
            if op.cc != cc:
                continue
            verdict = assessments[op.entity_id]
            if verdict.controlling_cc != cc:
                continue
            size = sum(
                self._records[a].num_addresses
                for a in self._operator_asns.get(op.entity_id, [])
            )
            if size > best_size:
                best, best_size = op.entity_id, size
        return best

    def _materialize_one_subsidiary(
        self, parent: Entity, target: Country, rng
    ) -> None:
        parent_brand = parent.display_name
        legal, brand = self._forge.subsidiary(parent_brand, target.name, target.rir)
        if parent.cc == "CO":
            role = OperatorRole.TRANSIT          # the Internexa archetype
        elif rng.random() < 0.6:
            role = OperatorRole.MOBILE
        else:
            role = OperatorRole.ACCESS
        subsidiary = Operator(
            entity_id=self._next_op_id(target.cc),
            kind=EntityKind.OPERATOR,
            name=legal,
            cc=target.cc,
            brand=brand,
            role=role,
            scope=OperatorScope.NATIONAL,
            founded_year=rng.randint(1998, 2018),
            website=f"{brand.lower().replace(' ', '')}.example",
        )
        self._ownership.add_entity(subsidiary)
        self._ownership.add_stake(
            OwnershipStake(
                parent.entity_id, subsidiary.entity_id,
                round(rng.uniform(0.51, 1.0), 3),
            )
        )
        if rng.random() < self.config.asnless_subsidiary_prob:
            # Registered for legal purposes only; runs no network of its own
            # (the China-Telecom-in-Brazil case).
            self._operator_asns[subsidiary.entity_id] = []
            return
        # Foreign subsidiaries command a real access-market share, larger in
        # Africa (Ooredoo/Etisalat pattern, where the paper finds foreign
        # majorities in 6 countries), smaller elsewhere.
        if target.region == "Africa":
            share = rng.uniform(0.1, 0.65)
        else:
            share = rng.uniform(0.03, 0.22)
        if role is OperatorRole.TRANSIT:
            share *= 0.15
        # In big address-space markets even a successful foreign entrant is
        # a sliver of the announced space (China Telecom Americas in the US);
        # eyeball share is dampened less (Optus serves 18 % of Australians).
        addr_damp = (1.0, 1.0, 0.8, 0.25, 0.06, 0.02)[target.addr_class]
        eyeball_share = share * addr_damp ** 0.5
        share *= addr_damp
        # Make room by shrinking the domestic operators' shares.
        plan = self._plans[target.cc]
        for op_plan in plan.operators:
            op_plan.addr_share *= 1.0 - share
            op_plan.eyeball_share *= 1.0 - share
        # NOTE: domestic operators were already materialized with their
        # original shares; the shrink applies to the *recorded plan*, while
        # the subsidiary's own allocation below draws from the same country
        # budget, slightly overcommitting it.  This models the generator's
        # market totals approximately — shares are normalized downstream.
        budget_24s = self.config.addr_budget_by_class[target.addr_class]
        eyeball_budget = self.config.eyeball_budget_by_class[target.pop_class]
        sub_plan_siblings = rng.randint(*self.config.subsidiary_sibling_range)
        # The domestic market was already materialized against the full
        # budget, so hitting a *net* share of s requires allocating
        # s/(1-s) of the budget on top (s/(1-s) / (1 + s/(1-s)) == s).
        addr_grossup = share / max(1e-6, 1.0 - min(share, 0.85))
        eyeball_grossup = eyeball_share / max(
            1e-6, 1.0 - min(eyeball_share, 0.85)
        )
        self._register_asns(
            subsidiary,
            target.cc,
            target.rir,
            sibling_count=sub_plan_siblings,
            addr_24s=max(1, round(addr_grossup * budget_24s)),
            eyeballs=round(
                eyeball_grossup * eyeball_budget * rng.uniform(0.8, 1.2)
            ),
            rng=rng,
            unrelated_alias_prob=0.35,
        )
        plan.operators.append(
            OperatorPlan(
                role=role,
                archetype="foreign_subsidiary",
                addr_share=share,
                eyeball_share=eyeball_share,
                sibling_count=sub_plan_siblings,
            )
        )

    # -- step 5: excluded + subnational organizations ------------------------------
    def _materialize_excluded_and_subnational(self) -> None:
        for country in COUNTRIES:
            plan = self._plans[country.cc]
            rng = self._factory.fresh(f"excluded:{country.cc}")
            for role in plan.excluded_roles:
                suffix = {
                    OperatorRole.ACADEMIC: "National Research and Education Network",
                    OperatorRole.GOVNET: "Government Network Agency",
                    OperatorRole.NIC: "Network Information Centre",
                }[role]
                operator = Operator(
                    entity_id=self._next_op_id(country.cc),
                    kind=EntityKind.OPERATOR,
                    name=f"{country.name} {suffix}",
                    cc=country.cc,
                    brand=None,
                    role=role,
                    scope=OperatorScope.NATIONAL,
                    founded_year=rng.randint(1990, 2012),
                )
                self._ownership.add_entity(operator)
                self._ownership.add_stake(
                    OwnershipStake(f"gov-{country.cc}", operator.entity_id, 1.0)
                )
                budget_24s = self.config.addr_budget_by_class[country.addr_class]
                self._register_asns(
                    operator, country.cc, country.rir,
                    sibling_count=1,
                    addr_24s=max(1, round(0.008 * budget_24s * rng.uniform(0.5, 1.5))),
                    eyeballs=rng.randint(0, 20000)
                    if role is OperatorRole.ACADEMIC else 0,
                    rng=rng,
                )
            # Subnational state operators in large countries (§5.3 excludes
            # them from the dataset even though a state entity owns them).
            if country.addr_class >= 3 and rng.random() < 0.35:
                province = Entity(
                    entity_id=f"subnat-{country.cc}",
                    kind=EntityKind.SUBNATIONAL,
                    name=f"Province of {country.name} North",
                    cc=country.cc,
                )
                self._ownership.add_entity(province)
                operator = Operator(
                    entity_id=self._next_op_id(country.cc),
                    kind=EntityKind.OPERATOR,
                    name=f"{country.name} Northern Regional Telecom",
                    cc=country.cc,
                    role=OperatorRole.ACCESS,
                    scope=OperatorScope.SUBNATIONAL,
                    founded_year=rng.randint(1995, 2015),
                )
                self._ownership.add_entity(operator)
                self._ownership.add_stake(
                    OwnershipStake(
                        province.entity_id, operator.entity_id,
                        round(rng.uniform(0.6, 1.0), 3),
                    )
                )
                budget_24s = self.config.addr_budget_by_class[country.addr_class]
                self._register_asns(
                    operator, country.cc, country.rir,
                    sibling_count=1,
                    addr_24s=max(2, round(0.006 * budget_24s * rng.uniform(0.5, 1.5))),
                    eyeballs=rng.randint(5000, 80000),
                    rng=rng,
                )

    # -- step 6: long tail of small networks --------------------------------------
    def _materialize_tail(self) -> None:
        for country in COUNTRIES:
            plan = self._plans[country.cc]
            rng = self._factory.fresh(f"tail:{country.cc}")
            eyeball_budget = self.config.eyeball_budget_by_class[country.pop_class]
            tail_eyeballs = round(0.1 * eyeball_budget)
            count = plan.tail_as_count
            # The long tail shares ~5 % of the country's address budget so
            # it never dilutes the planned operator market shares.
            budget_24s = self.config.addr_budget_by_class[country.addr_class]
            tail_24s_each = max(1, round(0.05 * budget_24s / max(count, 1)))
            for i in range(count):
                legal = self._forge.unrelated_legal_name(country.rir)
                operator = Operator(
                    entity_id=self._next_op_id(country.cc),
                    kind=EntityKind.OPERATOR,
                    name=legal,
                    cc=country.cc,
                    role=OperatorRole.ENTERPRISE
                    if rng.random() < 0.6 else OperatorRole.ACCESS,
                    scope=OperatorScope.NATIONAL,
                    founded_year=rng.randint(1995, 2019),
                )
                self._ownership.add_entity(operator)
                self._register_asns(
                    operator, country.cc, country.rir,
                    sibling_count=1,
                    addr_24s=max(1, round(tail_24s_each * rng.uniform(0.5, 1.5))),
                    eyeballs=max(0, round(tail_eyeballs / max(count, 1)))
                    if operator.role is OperatorRole.ACCESS else 0,
                    rng=rng,
                )

    # -- step 7: tier-1 carriers ------------------------------------------------------
    def _build_tier1(self) -> None:
        rng = self._factory.stream("tier1")
        for i, cc in enumerate(_TIER1_HOME_CCS):
            legal, brand = self._forge.transit_operator(
                f"Backbone {i + 1}", "ARIN" if cc == "US" else "RIPE"
            )
            country = next(c for c in COUNTRIES if c.cc == cc)
            operator = Operator(
                entity_id=self._next_op_id(cc),
                kind=EntityKind.OPERATOR,
                name=legal,
                cc=cc,
                brand=brand,
                role=OperatorRole.TRANSIT,
                scope=OperatorScope.NATIONAL,
                founded_year=rng.randint(1988, 2000),
                website=f"{brand.lower().replace(' ', '')}.example",
            )
            self._ownership.add_entity(operator)
            self._register_asns(
                operator, cc, country.rir,
                sibling_count=1,
                addr_24s=rng.randint(20, 80),
                eyeballs=0,
                rng=rng,
            )
            self._tier1_asns.append(self._primary_asn[operator.entity_id])

    # -- step 8: topology ---------------------------------------------------------------
    def _build_topology(self) -> None:
        rng = self._factory.stream("topology")
        graph = self._graph
        for asn in self._records:
            graph.add_as(asn)
        # Tier-1 full mesh.
        for i, a in enumerate(self._tier1_asns):
            for b in self._tier1_asns[i + 1:]:
                graph.add_p2p(a, b)

        assessments = self._ownership.assess_all()

        # International carriers: the flagship state carrier of selected
        # countries acts as cross-border transit.
        for cc in INTERNATIONAL_CARRIER_CCS:
            flagship = self._flagship_state_operator(cc)
            if flagship is None:
                continue
            carrier_asn = self._primary_asn[flagship]
            self._intl_carriers[cc] = carrier_asn
            for provider in rng.sample(self._tier1_asns, k=2):
                graph.add_c2p(carrier_asn, provider)
            for other_cc, other_asn in self._intl_carriers.items():
                if other_cc != cc and rng.random() < 0.4:
                    graph.add_p2p(carrier_asn, other_asn)

        carrier_asns = set(self._intl_carriers.values())
        for country in COUNTRIES:
            self._wire_country(country, rng, carrier_asns, assessments)

    def _wire_country(self, country: Country, rng, carrier_asns, assessments) -> None:
        graph = self._graph
        cc = country.cc
        plan = self._plans[cc]
        # Identify this country's operator primaries (excluding tier-1s,
        # which are wired already).
        operator_primaries: List[Tuple[int, float, bool]] = []
        gateway_candidates: List[int] = []
        for op in self._ownership.operators():
            if op.cc != cc:
                continue
            asns = self._operator_asns.get(op.entity_id, [])
            if not asns:
                continue
            primary = asns[0]
            if primary in self._tier1_asns:
                continue
            record = self._records[primary]
            if record.role is OperatorRole.ENTERPRISE:
                continue
            is_carrier = primary in carrier_asns
            operator_primaries.append(
                (primary, record.num_addresses, is_carrier)
            )
            if record.role in (OperatorRole.TRANSIT, OperatorRole.CABLE):
                gateway_candidates.append(primary)
            elif record.role is OperatorRole.INCUMBENT:
                gateway_candidates.append(primary)

        if not operator_primaries:
            return

        # Gateways: prefer explicit transit/cable operators, else incumbent.
        transit_gateways = [
            asn for asn in gateway_candidates
            if self._records[asn].role in (OperatorRole.TRANSIT, OperatorRole.CABLE)
        ]
        gateways = transit_gateways or gateway_candidates[:1]
        self._gateway_asns[cc] = gateways

        intl_pool = self._tier1_asns + [
            asn for ccx, asn in self._intl_carriers.items() if ccx != cc
        ]

        # Gateways buy international transit.
        for gateway in gateways:
            if gateway in carrier_asns:
                continue  # already wired to tier-1s
            providers = rng.sample(intl_pool, k=min(len(intl_pool), rng.randint(1, 3)))
            for provider in providers:
                graph.add_c2p(gateway, provider)

        transit_dominant = cc in self._transit_dominant
        gateway_set = set(gateways)

        # Operator primaries buy from gateways (transit-dominant) or mix in
        # direct international transit (open markets).
        for primary, _, is_carrier in operator_primaries:
            if primary in gateway_set or is_carrier:
                continue
            if transit_dominant or rng.random() < 0.5:
                for gateway in gateways[: rng.randint(1, max(1, len(gateways)))]:
                    if gateway != primary:
                        graph.add_c2p(primary, gateway)
                if not transit_dominant and rng.random() < 0.4:
                    graph.add_c2p(primary, rng.choice(intl_pool))
            else:
                providers = rng.sample(
                    intl_pool, k=min(len(intl_pool), rng.randint(1, 2))
                )
                for provider in providers:
                    graph.add_c2p(primary, provider)
                if gateways and rng.random() < 0.3:
                    if gateways[0] != primary:
                        graph.add_c2p(primary, gateways[0])

        # Sibling ASNs hang off their operator's primary.
        for op in self._ownership.operators():
            if op.cc != cc:
                continue
            asns = self._operator_asns.get(op.entity_id, [])
            for sibling in asns[1:]:
                graph.add_c2p(sibling, asns[0])

        # Domestic peering among access operators (IXP effect).
        access_primaries = [
            p for p, _, _ in operator_primaries
            if self._records[p].role
            in (OperatorRole.ACCESS, OperatorRole.MOBILE, OperatorRole.INCUMBENT)
        ]
        for i, a in enumerate(access_primaries):
            for b in access_primaries[i + 1:]:
                if rng.random() < 0.25 and graph.relationship(a, b) is None:
                    graph.add_p2p(a, b)

        # Long-tail networks buy from domestic operators.
        weights = [max(size, 1) for _, size, _ in operator_primaries]
        primaries_only = [p for p, _, _ in operator_primaries]
        for op in self._ownership.operators():
            if op.cc != cc or op.role is not OperatorRole.ENTERPRISE:
                continue
            for asn in self._operator_asns.get(op.entity_id, []):
                count = 1 if rng.random() < 0.7 else 2
                chosen = set()
                for _ in range(count):
                    provider = rng.choices(primaries_only, weights=weights, k=1)[0]
                    if provider != asn and provider not in chosen:
                        graph.add_c2p(asn, provider)
                        chosen.add(provider)

        # Regional export: cable/carrier gateways pick up foreign customers
        # in the same region (Angola Cables / BSCCL cone growth).
        for gateway in gateways:
            record = self._records[gateway]
            if record.role is not OperatorRole.CABLE:
                continue
            neighbors = [
                c for c in COUNTRIES
                if c.region == country.region and c.cc != cc
            ]
            rng.shuffle(neighbors)
            for neighbor in neighbors[: rng.randint(2, 6)]:
                for foreign_gateway in self._gateway_asns.get(neighbor.cc, []):
                    if (
                        foreign_gateway != gateway
                        and foreign_gateway not in carrier_asns
                        # Never chain cable gateways under each other: a
                        # triangle of such edges would create a c2p cycle.
                        and self._records[foreign_gateway].role
                        is not OperatorRole.CABLE
                        and graph.relationship(foreign_gateway, gateway) is None
                    ):
                        graph.add_c2p(foreign_gateway, gateway)
                        break
