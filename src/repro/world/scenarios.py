"""Adversarial scenario packs: declarative world perturbations + assertions.

The paper's CTI analysis is only meaningful if policy-sensitive events can
actually move the metric; with the policy routing engine of
:mod:`repro.net.routing` they now can.  This module turns the obvious
state-intervention scenarios into *packs*: each pack

1. **plans** a perturbation against a pristine baseline (adaptively — it
   inspects baseline CTI to pick the country/AS where the effect is
   measurable, so the pack is robust across seeds and scales);
2. **applies** it to a cloned world (a routing policy, a rebuilt topology,
   or an ownership mutation);
3. re-runs the full identification pipeline and **checks** directional
   assertions on how CTI mass and precision/recall shift.

Every pack draws randomness from a seed derived per pack name, mutates only
its own clone of the world, and reports through a canonical JSON encoding —
same seed, same packs, byte-identical report.  The ``scenario-smoke`` CI
job runs the whole library twice and fails on any drift.

Packs double as an integration gauntlet for the degradation paths: the
``route_leak_degraded`` pack injects a fatal Orbis fault mid-leak and
asserts the run still completes with the leak assertions intact.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorldError
from repro.net.routing import RoutingPolicy
from repro.net.topology import ASGraph
from repro.resilience import FaultPlan, install_fault_plan
from repro.rng import derive_seed
from repro.world.events import privatize_operator

import random

# The pipeline layers sit above repro.world in the import graph (sources
# re-use world entity types), so scenario packs import them lazily.


def _pipeline_api():
    from repro.core.pipeline import PipelineInputs, StateOwnershipPipeline
    from repro.core.validation import validate_against_world
    from repro.cti.metric import CTIComputer

    return PipelineInputs, StateOwnershipPipeline, validate_against_world, CTIComputer

__all__ = [
    "Assertion",
    "PackOutcome",
    "ScenarioReport",
    "ScenarioPack",
    "BaselineProbe",
    "SCENARIO_PACKS",
    "all_pack_names",
    "run_scenario_packs",
]


@dataclass(frozen=True)
class Assertion:
    """One directional claim a pack makes about the perturbed world."""

    name: str
    passed: bool
    detail: str

    def as_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass
class PackOutcome:
    """Everything one pack produced: plan, both metric bundles, verdicts."""

    name: str
    description: str
    plan: dict
    baseline: dict
    perturbed: dict
    assertions: List[Assertion]

    @property
    def passed(self) -> bool:
        return all(a.passed for a in self.assertions)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "plan": self.plan,
            "baseline": self.baseline,
            "perturbed": self.perturbed,
            "assertions": [a.as_dict() for a in self.assertions],
            "passed": self.passed,
        }


@dataclass
class ScenarioReport:
    """The full scenario-matrix result (canonically JSON-serializable)."""

    seed: int
    scale: float
    outcomes: List[PackOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(o.passed for o in self.outcomes)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "scale": self.scale,
            "packs": {o.name: o.as_dict() for o in self.outcomes},
            "packs_total": len(self.outcomes),
            "packs_passed": sum(1 for o in self.outcomes if o.passed),
            "passed": self.passed,
        }

    def to_json(self) -> str:
        """Canonical byte-stable encoding (the CI drift gate compares it)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def as_text(self) -> str:
        lines = [
            f"scenario matrix  seed={self.seed} scale={self.scale}",
            "",
        ]
        for outcome in self.outcomes:
            flag = "PASS" if outcome.passed else "FAIL"
            lines.append(f"[{flag}] {outcome.name}")
            for a in outcome.assertions:
                mark = "ok" if a.passed else "FAILED"
                lines.append(f"    {mark:6s} {a.name}: {a.detail}")
        lines.append("")
        lines.append(
            f"{sum(1 for o in self.outcomes if o.passed)}"
            f"/{len(self.outcomes)} packs passed"
        )
        return "\n".join(lines)


class BaselineProbe:
    """Read-only view of the pristine world + its baseline pipeline run.

    Packs use it during planning to aim their perturbation where the
    baseline metric actually has mass; the runner uses it to freeze the
    "before" side of every directional assertion.
    """

    def __init__(self, world, inputs, result) -> None:
        _, _, validate_against_world, CTIComputer = _pipeline_api()
        self.world = world
        self.inputs = inputs
        self.result = result
        self.validation = validate_against_world(result, world)
        self.cti = CTIComputer(inputs.prefix2as, inputs.geolocation, inputs.collector)

    def eligible_ccs(self) -> List[str]:
        return sorted(self.inputs.cti_eligible_ccs)

    def country_cti(self, cc: str) -> Dict[int, float]:
        return self.cti.country_cti(cc)

    def top_influencers(self, cc: str, k: int = 5) -> List[Tuple[int, float]]:
        scores = self.country_cti(cc)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


class ScenarioPack:
    """Base class: a named perturbation with directional assertions."""

    name: str = ""
    description: str = ""
    #: Optional fault-injection plan installed around the perturbed run
    #: (exercises the degradation paths under scenario stress).
    fault_plan: Optional[str] = None

    def plan(self, probe: BaselineProbe, rng: random.Random) -> dict:
        raise NotImplementedError

    def apply(self, world, plan: dict, rng: random.Random) -> None:
        raise NotImplementedError

    def check(self, plan: dict, baseline: dict, perturbed: dict) -> List[Assertion]:
        raise NotImplementedError

    def extra_metrics(self, world, plan: dict) -> dict:
        """Pack-specific observables computed on *both* sides of the
        perturbation (merged into each metric bundle)."""
        return {}

    # -- shared metric helpers -------------------------------------------------
    @staticmethod
    def _cti_of(bundle: dict, cc: str) -> Dict[int, float]:
        return {int(k): v for k, v in bundle["cti"].get(cc, {}).items()}

    @staticmethod
    def _mass(scores: Dict[int, float], asns: Sequence[int]) -> float:
        return sum(scores.get(a, 0.0) for a in asns)


# ---------------------------------------------------------------------------
# Pack implementations
# ---------------------------------------------------------------------------


class DepeeringPack(ScenarioPack):
    """A dominant transit AS depeers: all its settlement-free adjacencies
    go administratively down.  Monitor-observed paths stop crossing the
    cut adjacencies entirely, and the AS — chosen at plan time as the one
    whose CTI footprint rides hardest on its peer edges — loses CTI."""

    name = "depeering"
    description = (
        "peer-dependent top gateway tears down all peering sessions; "
        "observed paths lose the cut edges and CTI mass redistributes"
    )

    def plan(self, probe: BaselineProbe, rng: random.Random) -> dict:
        graph = probe.world.graph
        best = None
        for cc in probe.eligible_ccs():
            ranked = probe.top_influencers(cc, k=1)
            if not ranked:
                continue
            gateway, score = ranked[0]
            peers = sorted(graph.peers_of(gateway))
            if not peers:
                continue
            origins = probe.cti.scored_origins(cc)
            crossings = self._edge_crossings(probe.world, origins, gateway, peers)
            if crossings == 0:
                continue
            key = (crossings, score, cc)
            if best is None or key > best[0]:
                best = (key, cc, gateway, peers, origins)
        if best is None:
            raise WorldError("no CTI-eligible gateway whose paths cross its peer edges")
        _, cc, gateway, peers, origins = best
        return {
            "focus_ccs": [cc],
            "gateway": gateway,
            "peers": peers,
            "origins": origins,
            "down_edges": [[gateway, p] for p in peers],
        }

    def apply(self, world, plan: dict, rng: random.Random) -> None:
        world.set_routing_policy(
            RoutingPolicy.build(down_edges=[tuple(e) for e in plan["down_edges"]])
        )

    def extra_metrics(self, world, plan: dict) -> dict:
        return {
            "edge_crossings": self._edge_crossings(
                world, plan["origins"], plan["gateway"], plan["peers"]
            )
        }

    @staticmethod
    def _edge_crossings(
        world, origins: Sequence[int], gateway: int, peers: Sequence[int]
    ) -> int:
        """Monitor paths (to the scored origins) crossing a gateway-peer
        adjacency — the traffic a depeering directly tears down."""
        peer_set = set(peers)
        collector = world.collector
        count = 0
        for origin in origins:
            for path in collector.paths_to(origin).values():
                for a, b in zip(path, path[1:]):
                    if (a == gateway and b in peer_set) or (
                        b == gateway and a in peer_set
                    ):
                        count += 1
                        break
        return count

    def check(self, plan, baseline, perturbed) -> List[Assertion]:
        cc = plan["focus_ccs"][0]
        cross_before = baseline["edge_crossings"]
        cross_after = perturbed["edge_crossings"]
        before = self._cti_of(baseline, cc)
        after = self._cti_of(perturbed, cc)
        shift = sum(
            abs(after.get(a, 0.0) - before.get(a, 0.0))
            for a in set(before) | set(after)
        )
        return [
            Assertion(
                "cut_edges_vanish_from_paths",
                cross_before > 0 and cross_after == 0,
                f"paths crossing cut adjacencies "
                f"{cross_before} -> {cross_after}",
            ),
            Assertion(
                # Rerouting off the cut adjacencies must move CTI mass
                # between the ASes above the gateway (which AS depends on
                # where the gateway sits — a chokepoint keeps its own
                # score, an edge-dependent gateway loses it — so the
                # robust directional claim is on the distribution).
                "cti_distribution_shifts",
                shift > 0.0,
                f"cc={cc} CTI L1 shift {shift:.6f} across "
                f"{len(set(before) | set(after))} ASes",
            ),
        ]


def _leak_plan(probe: BaselineProbe) -> dict:
    """Shared planner for the route-leak packs.

    The leaker is a multi-homed AS with peers that today carries *no* CTI
    for the focus country; once it re-exports everything, its providers
    receive customer-class (most-preferred) routes through it and traffic
    funnels in — the classic leak amplification.
    """
    graph = probe.world.graph
    best = None
    for cc in probe.eligible_ccs():
        scores = probe.country_cti(cc)
        if not scores:
            continue
        total = sum(scores.values())
        if best is None or (total, cc) > (best[0], best[1]):
            best = (total, cc, scores)
    if best is None:
        raise WorldError("no CTI-eligible country with baseline CTI mass")
    _, cc, scores = best
    candidates = []
    for asn in graph.asns:
        if scores.get(asn, 0.0) > 0.0:
            continue
        n_prov = len(graph.providers_of(asn))
        n_peer = len(graph.peers_of(asn))
        if n_prov >= 2 and n_peer >= 1:
            candidates.append((n_prov + n_peer, -asn, asn))
    if not candidates:
        raise WorldError("no leak candidate (multi-homed, zero baseline CTI)")
    candidates.sort(reverse=True)
    leaker = candidates[0][2]
    return {"focus_ccs": [cc], "leaker": leaker}


class RouteLeakPack(ScenarioPack):
    """A multi-homed AS leaks its full table.  Its providers pick up
    customer-class routes through it, pulling monitor-observed paths (and
    with them CTI mass) through an AS that previously carried none."""

    name = "route_leak"
    description = (
        "multi-homed AS re-exports everything; it acquires CTI for the "
        "focus country it never transited before"
    )

    def plan(self, probe: BaselineProbe, rng: random.Random) -> dict:
        return _leak_plan(probe)

    def apply(self, world, plan: dict, rng: random.Random) -> None:
        world.set_routing_policy(RoutingPolicy.build(leakers=[plan["leaker"]]))

    def check(self, plan, baseline, perturbed) -> List[Assertion]:
        cc = plan["focus_ccs"][0]
        leaker = plan["leaker"]
        before = self._cti_of(baseline, cc).get(leaker, 0.0)
        after = self._cti_of(perturbed, cc).get(leaker, 0.0)
        return [
            Assertion(
                "leaker_gains_cti",
                after > before,
                f"cc={cc} leaker AS{leaker} CTI {before:.6f} -> {after:.6f}",
            ),
        ]


class RouteLeakDegradedPack(RouteLeakPack):
    """The same leak with the Orbis feed failing fatally mid-run: the
    degradation paths must absorb the fault (run completes, provenance
    flags exactly Orbis) while the leak's routing effect still lands."""

    name = "route_leak_degraded"
    description = (
        "route leak with a fatal Orbis fault injected; run degrades "
        "gracefully and the leak assertion still holds"
    )
    fault_plan = "seed=9;source.orbis=fatal"

    def check(self, plan, baseline, perturbed) -> List[Assertion]:
        assertions = super().check(plan, baseline, perturbed)
        flags = perturbed.get("degraded_sources", [])
        assertions.append(
            Assertion(
                "degrades_to_orbis_only",
                flags == ["O"],
                f"degraded_sources={flags!r} (expected ['O'])",
            )
        )
        return assertions


class PrefixHijackPack(ScenarioPack):
    """A foreign tier-1 announces the focus country's largest origin.
    Monitors near the hijacker capture its announcement, so paths to the
    victim bifurcate and the legitimate transit chain loses CTI."""

    name = "prefix_hijack"
    description = (
        "tier-1 AS originates the focus country's largest origin; part "
        "of the monitor fleet is captured and legitimate transit loses CTI"
    )

    def plan(self, probe: BaselineProbe, rng: random.Random) -> dict:
        world = probe.world
        best = None
        for cc in probe.eligible_ccs():
            ranked = probe.top_influencers(cc, k=1)
            origins = probe.cti.scored_origins(cc)
            if not ranked or not origins:
                continue
            counts = world.true_address_counts()
            victim = max(origins, key=lambda a: (counts.get(a, 0), -a))
            key = (ranked[0][1], cc)
            if best is None or key > best[0]:
                best = (key, cc, victim, ranked[0][0])
        if best is None:
            raise WorldError("no CTI-eligible country with scored origins")
        _, cc, victim, top_as = best
        hijackers = [
            t
            for t in sorted(world.tier1_asns)
            if world.country_of_asn(t) != cc and t != victim
        ]
        if not hijackers:
            raise WorldError("no foreign tier-1 available as hijacker")
        return {
            "focus_ccs": [cc],
            "victim": victim,
            "hijacker": hijackers[0],
            "baseline_top_as": top_as,
        }

    def apply(self, world, plan: dict, rng: random.Random) -> None:
        world.set_routing_policy(
            RoutingPolicy.build(hijacks={plan["victim"]: [plan["hijacker"]]})
        )

    def extra_metrics(self, world, plan: dict) -> dict:
        """Monitors whose preferred path to the victim ends at the
        hijacker — the observable capture footprint (0 at baseline)."""
        hijacker = plan["hijacker"]
        captured = sum(
            1
            for path in world.collector.paths_to(plan["victim"]).values()
            if path[-1] == hijacker
        )
        return {"captured_monitors": captured}

    def check(self, plan, baseline, perturbed) -> List[Assertion]:
        cc = plan["focus_ccs"][0]
        top_as = plan["baseline_top_as"]
        before = self._cti_of(baseline, cc).get(top_as, 0.0)
        after = self._cti_of(perturbed, cc).get(top_as, 0.0)
        captured = perturbed.get("captured_monitors", 0)
        return [
            Assertion(
                "monitors_captured",
                captured > 0,
                f"{captured} monitors resolve the victim via the hijacker",
            ),
            Assertion(
                "legit_transit_loses_cti",
                after < before,
                f"cc={cc} top AS{top_as} CTI {before:.6f} -> {after:.6f}",
            ),
        ]


class SanctionsRehomingPack(ScenarioPack):
    """Sanctions cut the focus country's origins off their foreign
    providers; they re-home behind the domestic gateway, which becomes the
    choke point — its CTI must rise."""

    name = "sanctions_rehoming"
    description = (
        "origins drop foreign providers and re-home behind the domestic "
        "gateway; the gateway's CTI concentration increases"
    )

    def plan(self, probe: BaselineProbe, rng: random.Random) -> dict:
        world = probe.world
        graph = world.graph
        best = None
        for cc in probe.eligible_ccs():
            gateways = world.gateway_asns.get(cc, [])
            if not gateways:
                continue
            scores = probe.country_cti(cc)
            gateway = max(gateways, key=lambda g: (scores.get(g, 0.0), -g))
            cut: List[List[int]] = []
            rehomed: List[int] = []
            for asn, record in sorted(world.asn_records.items()):
                if record.cc != cc or asn == gateway:
                    continue
                foreign = [
                    p for p in graph.providers_of(asn) if world.country_of_asn(p) != cc
                ]
                if not foreign:
                    continue
                cut.extend([asn, p] for p in sorted(foreign))
                if (
                    graph.relationship(asn, gateway) is None
                    and gateway not in graph.customer_cone(asn)
                ):
                    rehomed.append(asn)
            if not cut or not rehomed:
                continue
            key = (len(cut), scores.get(gateway, 0.0), cc)
            if best is None or key > best[0]:
                best = (key, cc, gateway, cut, rehomed)
        if best is None:
            raise WorldError("no country with foreign provider edges to cut")
        _, cc, gateway, cut, rehomed = best
        return {
            "focus_ccs": [cc],
            "gateway": gateway,
            "cut_c2p": cut,
            "rehomed": rehomed,
        }

    def apply(self, world, plan: dict, rng: random.Random) -> None:
        drop = {(c, p) for c, p in (tuple(e) for e in plan["cut_c2p"])}
        adds = [(asn, plan["gateway"]) for asn in plan["rehomed"]]
        world.rewire(_rebuild_graph(world.graph, drop, adds))

    def check(self, plan, baseline, perturbed) -> List[Assertion]:
        cc = plan["focus_ccs"][0]
        gateway = plan["gateway"]
        before = self._cti_of(baseline, cc).get(gateway, 0.0)
        after = self._cti_of(perturbed, cc).get(gateway, 0.0)
        foreign = sorted({p for _, p in (tuple(e) for e in plan["cut_c2p"])})
        f_before = self._mass(self._cti_of(baseline, cc), foreign)
        f_after = self._mass(self._cti_of(perturbed, cc), foreign)
        return [
            Assertion(
                "gateway_cti_rises",
                after > before,
                f"cc={cc} gateway AS{gateway} CTI {before:.6f} -> {after:.6f}",
            ),
            Assertion(
                "foreign_provider_cti_drops",
                f_after < f_before,
                f"cc={cc} ex-providers' CTI mass {f_before:.6f} -> {f_after:.6f}",
            ),
        ]


class PrivatizationWavePack(ScenarioPack):
    """Several state carriers the pipeline currently identifies are sold
    below the control threshold.  Ground truth shrinks, and the frozen
    baseline dataset decays: its precision against the *new* truth drops
    (the paper's §9 ageing argument, now as an executable assertion)."""

    name = "privatization_wave"
    description = (
        "state carriers found by the baseline run are privatized; truth "
        "shrinks and the frozen dataset's precision decays"
    )

    #: How many operators the wave privatizes (fewer if the baseline run
    #: identified fewer).
    wave_size = 3

    def plan(self, probe: BaselineProbe, rng: random.Random) -> dict:
        dataset_asns = set(probe.result.state_owned_asns())
        candidates = []
        for gto in probe.world.ground_truth():
            hit = sorted(set(gto.asns) & dataset_asns)
            if hit and not gto.is_foreign_subsidiary:
                candidates.append(
                    (len(hit), len(gto.asns), gto.operator.entity_id, hit)
                )
        if not candidates:
            raise WorldError("baseline run found no true state operators")
        candidates.sort(key=lambda c: (-c[0], -c[1], c[2]))
        wave = candidates[: self.wave_size]
        return {
            "focus_ccs": [],
            "operators": [c[2] for c in wave],
            "privatized_asns": sorted({a for c in wave for a in c[3]}),
        }

    def apply(self, world, plan: dict, rng: random.Random) -> None:
        targets = set(plan["operators"])
        for gto in list(world.ground_truth()):
            if gto.operator.entity_id in targets:
                privatize_operator(world, gto, rng, year=2026)

    def check(self, plan, baseline, perturbed) -> List[Assertion]:
        privatized = set(plan["privatized_asns"])
        truth_before = set(baseline["truth_asns"])
        truth_after = set(perturbed["truth_asns"])
        dataset_before = set(baseline["dataset_asns"])
        dataset_after = set(perturbed["dataset_asns"])
        frozen_tp = len(dataset_before & truth_after)
        frozen_precision = frozen_tp / len(dataset_before) if dataset_before else 0.0
        return [
            Assertion(
                "ground_truth_shrinks",
                len(truth_after) < len(truth_before),
                f"truth ASNs {len(truth_before)} -> {len(truth_after)}",
            ),
            Assertion(
                "frozen_dataset_precision_decays",
                frozen_precision < baseline["asn_precision"],
                f"frozen precision {frozen_precision:.4f} < baseline "
                f"{baseline['asn_precision']:.4f}",
            ),
            Assertion(
                "pipeline_drops_privatized_asns",
                len(privatized & dataset_after)
                < len(privatized & dataset_before),
                f"privatized ASNs in dataset "
                f"{len(privatized & dataset_before)} -> "
                f"{len(privatized & dataset_after)}",
            ),
        ]


def _rebuild_graph(
    old: ASGraph,
    drop_c2p: set,
    add_c2p: Sequence[Tuple[int, int]],
) -> ASGraph:
    """Rebuild a topology minus ``drop_c2p`` edges, plus ``add_c2p``.

    :class:`ASGraph` deliberately has no edge removal (dense adjacency
    arrays are append-only), so scenario perturbations rebuild.  Node
    order is preserved; edge *insertion* order may differ from the
    original build, which is routing-safe because propagation sorts
    adjacency by ASN at every step.
    """
    g = ASGraph()
    for asn in old.asns:
        g.add_as(asn)
    for asn in old.asns:
        for provider in old.providers_of(asn):
            if (asn, provider) in drop_c2p:
                continue
            g.add_c2p(asn, provider)
    seen = set()
    for asn in old.asns:
        for peer in old.peers_of(asn):
            edge = (asn, peer) if asn <= peer else (peer, asn)
            if edge in seen:
                continue
            seen.add(edge)
            g.add_p2p(*edge)
    for customer, provider in add_c2p:
        g.add_c2p(customer, provider)
    return g


#: Registry, in report order.  ≥5 packs assert directional CTI /
#: precision-recall shifts (the scenario-smoke acceptance bar).
SCENARIO_PACKS: Tuple[ScenarioPack, ...] = (
    DepeeringPack(),
    RouteLeakPack(),
    PrefixHijackPack(),
    SanctionsRehomingPack(),
    PrivatizationWavePack(),
    RouteLeakDegradedPack(),
)


def all_pack_names() -> List[str]:
    return [p.name for p in SCENARIO_PACKS]


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _clone_world(world):
    """Deep-copy a world for mutation, leaving derived caches behind."""
    collector, truth = world._collector, world._truth_cache
    world._collector = None
    world._truth_cache = None
    try:
        clone = copy.deepcopy(world)
    finally:
        world._collector = collector
        world._truth_cache = truth
    return clone


def _run_pipeline(world, context=None):
    PipelineInputs, StateOwnershipPipeline, _, _ = _pipeline_api()
    inputs = PipelineInputs.from_world(world)
    result = StateOwnershipPipeline(inputs, context=context).run()
    return inputs, result


def _metric_bundle(world, inputs, result, focus_ccs: Sequence[str]) -> dict:
    """The comparable "side" of a pack: validation + focus-country CTI."""
    _, _, validate_against_world, CTIComputer = _pipeline_api()
    validation = validate_against_world(result, world)
    cti = CTIComputer(inputs.prefix2as, inputs.geolocation, inputs.collector)
    return {
        "asn_precision": validation.asn_precision,
        "asn_recall": validation.asn_recall,
        "asn_f1": validation.asn_f1,
        "company_precision": validation.company_precision,
        "company_recall": validation.company_recall,
        "dataset_asns": sorted(result.state_owned_asns()),
        "truth_asns": sorted(world.ground_truth_asns()),
        "degraded_sources": sorted(s.value for s in result.degraded_sources),
        "cti": {
            cc: {str(asn): score for asn, score in sorted(cti.country_cti(cc).items())}
            for cc in sorted(focus_ccs)
        },
    }


def run_scenario_packs(
    world,
    names: Optional[Sequence[str]] = None,
    context=None,
) -> ScenarioReport:
    """Run scenario packs against ``world`` and collect the report.

    ``world`` is the pristine baseline and is never mutated: every pack
    perturbs its own deep copy.  Pack randomness comes from
    ``derive_seed(world seed, "scenario:<pack>")``, so a report is a pure
    function of (seed, scale, pack list).
    """
    by_name = {p.name: p for p in SCENARIO_PACKS}
    selected: List[ScenarioPack] = []
    for name in names if names else all_pack_names():
        if name not in by_name:
            raise WorldError(
                f"unknown scenario pack {name!r} "
                f"(available: {', '.join(all_pack_names())})"
            )
        selected.append(by_name[name])

    base_inputs, base_result = _run_pipeline(world, context=context)
    probe = BaselineProbe(world, base_inputs, base_result)

    report = ScenarioReport(seed=world.config.seed, scale=world.config.scale)
    for pack in selected:
        rng = random.Random(derive_seed(world.config.seed, f"scenario:{pack.name}"))
        plan = pack.plan(probe, rng)
        focus = plan.get("focus_ccs", [])
        baseline = _metric_bundle(world, base_inputs, base_result, focus)
        baseline.update(pack.extra_metrics(world, plan))

        clone = _clone_world(world)
        pack.apply(clone, plan, rng)
        fault = FaultPlan.parse(pack.fault_plan) if pack.fault_plan else None
        install_fault_plan(fault)
        try:
            inputs, result = _run_pipeline(clone, context=context)
        finally:
            if fault is not None:
                install_fault_plan(None)
        perturbed = _metric_bundle(clone, inputs, result, focus)
        perturbed.update(pack.extra_metrics(clone, plan))

        report.outcomes.append(
            PackOutcome(
                name=pack.name,
                description=pack.description,
                plan=plan,
                baseline=baseline,
                perturbed=perturbed,
                assertions=pack.check(plan, baseline, perturbed),
            )
        )
    return report
