"""Gao-Rexford BGP route propagation.

For a given origin AS we compute, for every other AS, its *preferred* route
toward the origin under the standard policy model:

* prefer routes learned from customers over peers over providers;
* among equally-preferred routes, prefer the shortest AS path;
* break remaining ties on the lowest next-hop ASN (deterministic stand-in
  for router-id tie-breaking).

Export rules follow from the valley-free property: routes learned from a
customer are exported to everyone; routes learned from a peer or provider are
exported only to customers.

The result is a :class:`RoutingTree` — a compact next-hop table from which
full AS paths (as observed by the paper's BGP monitors) are reconstructed.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.net.topology import ASGraph

__all__ = ["RouteClass", "Route", "RoutingTree", "propagate_routes"]


class RouteClass(enum.IntEnum):
    """Preference class of a route (lower value = more preferred)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """A selected route from one AS toward an origin."""

    source: int          # the AS holding the route
    origin: int          # destination origin AS
    path: Tuple[int, ...]  # AS path: source first, origin last
    route_class: RouteClass

    @property
    def length(self) -> int:
        """Number of AS-level hops (path edges)."""
        return len(self.path) - 1


_UNREACHED = 255


class RoutingTree:
    """Preferred next-hops of every AS toward a single origin AS."""

    def __init__(
        self,
        graph: ASGraph,
        origin: int,
        next_hop: List[int],
        dist: List[int],
        route_class: List[int],
    ) -> None:
        self._graph = graph
        self.origin = origin
        self._next_hop = next_hop          # dense index of next hop, -1 at origin
        self._dist = dist                  # hop count, _UNREACHED if none
        self._route_class = route_class

    def has_route(self, asn: int) -> bool:
        """True if ``asn`` selected any route toward the origin."""
        return self._dist[self._graph.index_of(asn)] != _UNREACHED

    def distance(self, asn: int) -> Optional[int]:
        """AS-hop distance from ``asn`` to the origin (None if unreachable)."""
        d = self._dist[self._graph.index_of(asn)]
        return None if d == _UNREACHED else d

    def route_class(self, asn: int) -> Optional[RouteClass]:
        """Preference class of the route selected by ``asn``."""
        if not self.has_route(asn):
            return None
        return RouteClass(self._route_class[self._graph.index_of(asn)])

    def path_from(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the origin (inclusive), or None."""
        idx = self._graph.index_of(asn)
        if self._dist[idx] == _UNREACHED:
            return None
        path = [self._graph.asn_at(idx)]
        while self._next_hop[idx] != -1:
            idx = self._next_hop[idx]
            path.append(self._graph.asn_at(idx))
        return tuple(path)

    def route_from(self, asn: int) -> Optional[Route]:
        """Full :class:`Route` object selected by ``asn`` (or None)."""
        path = self.path_from(asn)
        if path is None:
            return None
        return Route(
            source=asn,
            origin=self.origin,
            path=path,
            route_class=RouteClass(self._route_class[self._graph.index_of(asn)]),
        )

    def reachable_count(self) -> int:
        """Number of ASes (including the origin) with a route."""
        return sum(1 for d in self._dist if d != _UNREACHED)


def propagate_routes(graph: ASGraph, origin: int) -> RoutingTree:
    """Compute the Gao-Rexford routing tree toward ``origin``.

    Delegates to the flat-array :class:`~repro.net.propagation.
    PropagationKernel` (CSR adjacency pre-sorted by ASN, bytearray result
    planes, per-hop frontier buckets), which makes the reference decisions
    of :func:`_reference_propagate_routes` — same phases, same iteration
    order, same tie-breaks — without per-visit sorting.  Building the
    kernel costs one adjacency sort; callers computing trees for many
    origins over one graph should hold a :class:`RoutingTreeCache`, which
    reuses a single kernel across origins.
    """
    from repro.net.propagation import PropagationKernel

    return PropagationKernel(graph).propagate(origin)


def _reference_propagate_routes(graph: ASGraph, origin: int) -> RoutingTree:
    """The original object/dict propagation, retained as the kernel oracle.

    Runs the classic three-phase breadth-first propagation: customer routes
    bubble up through providers, then spread one hop across peering edges,
    then provider routes sink down through customers.  Each phase processes
    nodes in increasing path length so that the first route installed at a
    node within a phase is its shortest; ties are broken on lowest next-hop
    ASN by pre-sorting adjacency in ASN order.  Adjacency rows are sorted
    once up front (they used to be re-sorted at every visit — pure waste,
    since sorting is deterministic and the graph is fixed for the call).
    """
    if origin not in graph:
        raise TopologyError(f"origin AS{origin} not in graph")

    n = len(graph)
    dist = [_UNREACHED] * n
    route_class = [_UNREACHED] * n
    next_hop = [-1] * n

    origin_idx = graph.index_of(origin)
    dist[origin_idx] = 0
    route_class[origin_idx] = int(RouteClass.ORIGIN)

    # Hoisted adjacency-class resolution: one ASN-order sort per row, not
    # one per visit.  Identical sort keys, so the output is bit-identical.
    asn_at = graph.asn_at
    sorted_providers = [sorted(graph.providers[i], key=asn_at) for i in range(n)]
    sorted_customers = [sorted(graph.customers[i], key=asn_at) for i in range(n)]
    sorted_peers = [sorted(graph.peers[i], key=asn_at) for i in range(n)]

    # Phase 1: customer routes climb provider edges (valley-free "uphill").
    # BFS by hop count; a node adopts the first (shortest, lowest-ASN) offer.
    frontier = [origin_idx]
    hop = 0
    while frontier:
        hop += 1
        next_frontier: List[int] = []
        for node in frontier:
            for provider in sorted_providers[node]:
                if dist[provider] == _UNREACHED:
                    dist[provider] = hop
                    route_class[provider] = int(RouteClass.CUSTOMER)
                    next_hop[provider] = node
                    next_frontier.append(provider)
        frontier = next_frontier

    # Phase 2: every AS holding a customer (or origin) route exports it to
    # its peers; peer routes are not re-exported to other peers/providers.
    # Process exporters in increasing distance for shortest-path selection.
    exporters = sorted(
        (
            i
            for i in range(n)
            if route_class[i] in (int(RouteClass.ORIGIN), int(RouteClass.CUSTOMER))
        ),
        key=lambda i: (dist[i], graph.asn_at(i)),
    )
    peer_updates: List[Tuple[int, int, int]] = []
    for node in exporters:
        for peer in sorted_peers[node]:
            if dist[peer] == _UNREACHED:
                peer_updates.append((peer, node, dist[node] + 1))
    for peer, via, d in peer_updates:
        # A peer may get multiple offers; exporters were pre-sorted so the
        # first recorded offer is the preferred one.
        if dist[peer] == _UNREACHED:
            dist[peer] = d
            route_class[peer] = int(RouteClass.PEER)
            next_hop[peer] = via

    # Phase 3: provider routes sink down customer edges ("downhill").
    # Seed with every routed node, ordered by distance, and BFS downward.
    queue = deque(
        sorted(
            (i for i in range(n) if dist[i] != _UNREACHED),
            key=lambda i: (dist[i], graph.asn_at(i)),
        )
    )
    while queue:
        node = queue.popleft()
        for customer in sorted_customers[node]:
            if dist[customer] == _UNREACHED:
                dist[customer] = dist[node] + 1
                route_class[customer] = int(RouteClass.PROVIDER)
                next_hop[customer] = node
                queue.append(customer)

    return RoutingTree(graph, origin, next_hop, dist, route_class)


class RoutingTreeCache:
    """Lazy per-origin cache of routing trees over a fixed graph.

    Owns one :class:`~repro.net.propagation.PropagationKernel` (built on
    first use) so the CSR image and frontier scratch are shared by every
    origin routed through this cache.
    """

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._trees: Dict[int, RoutingTree] = {}
        self._kernel = None

    def tree(self, origin: int) -> RoutingTree:
        """Return (computing if needed) the routing tree toward ``origin``."""
        tree = self._trees.get(origin)
        if tree is None:
            if self._kernel is None:
                from repro.net.propagation import PropagationKernel

                self._kernel = PropagationKernel(self._graph)
            tree = self._kernel.propagate(origin)
            self._trees[origin] = tree
        return tree

    def __len__(self) -> int:
        return len(self._trees)
