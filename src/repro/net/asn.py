"""Autonomous System Numbers.

ASNs are plain integers throughout the library (cheap to hash, sort and
store); this module provides validation helpers and a deterministic allocator
that mimics how Regional Internet Registries hand out AS numbers from
per-registry ranges.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Set

from repro.errors import ConfigError

__all__ = ["ASN", "MAX_ASN", "is_valid_asn", "ASNAllocator"]

#: Type alias used in signatures for readability; ASNs are plain ints.
ASN = int

#: Highest 32-bit AS number.
MAX_ASN = 2**32 - 1

#: Reserved ASNs that a registry would never delegate to an operator.
_RESERVED = frozenset({0, 23456, 65535, MAX_ASN})

#: Private-use ranges (RFC 6996).
_PRIVATE_RANGES = ((64512, 65534), (4200000000, 4294967294))


def is_valid_asn(value: int) -> bool:
    """Return True if ``value`` is a delegatable public AS number."""
    if not isinstance(value, int) or isinstance(value, bool):
        return False
    if value < 1 or value > MAX_ASN or value in _RESERVED:
        return False
    return not any(low <= value <= high for low, high in _PRIVATE_RANGES)


#: Per-RIR 16-bit allocation blocks, loosely modelled on real delegations.
#: Each RIR also gets a 32-bit block for "young" networks.
_RIR_BLOCKS = {
    "ARIN": [(1, 7299), (10000, 14999), (393216, 399260)],
    "RIPE": [(1877, 1901), (8192, 9215), (12288, 13311), (196608, 210331)],
    "APNIC": [(4608, 4865), (9216, 10239), (17408, 18431), (131072, 141625)],
    "LACNIC": [(26592, 27647), (52224, 53247), (262144, 273820)],
    # AFRINIC's real delegations are narrow; the synthetic 32-bit block is
    # widened so internet-scale worlds (scale 10+) don't exhaust the pool —
    # Africa has many countries, and this was the smallest pool by 6x.
    "AFRINIC": [(36864, 37887), (327680, 347679)],
}

#: Overflow 32-bit blocks, drawn only after a RIR's primary pool empties.
#: They tile the gaps between the primary 32-bit blocks, so `rir_of` stays
#: unambiguous.  Keeping them out of the primary pools preserves the exact
#: shuffle (and therefore every generated world) at scales that never
#: exhaust a pool — only internet-scale worlds (scale ~30, ~68k ASes)
#: reach into these.
_RIR_OVERFLOW_BLOCKS = {
    "ARIN": [(399261, 459260)],
    "RIPE": [(210332, 262143)],
    "APNIC": [(141626, 196607)],
    "LACNIC": [(273821, 327679)],
    "AFRINIC": [(347680, 393215)],
}


class ASNAllocator:
    """Deterministically allocate AS numbers from per-RIR ranges.

    The allocator scatters assignments within each RIR's blocks (like real
    registries, which do not hand out strictly consecutive numbers to
    unrelated operators) while remaining fully reproducible from its RNG.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._allocated: Set[int] = set()
        self._cursors = {rir: 0 for rir in _RIR_BLOCKS}
        # Pre-shuffle candidate numbers per RIR so allocation is O(1) amortized.
        self._pools = {rir: self._build_pool(rir) for rir in _RIR_BLOCKS}
        self._spilled: Set[str] = set()

    def _build_pool(self, rir: str) -> List[int]:
        pool: List[int] = []
        for low, high in _RIR_BLOCKS[rir]:
            # Sample a generous but bounded slice of each block; worlds never
            # need more than a few thousand ASNs per RIR.
            span = min(high - low + 1, 20000)
            pool.extend(range(low, low + span))
        pool = [asn for asn in pool if is_valid_asn(asn)]
        self._rng.shuffle(pool)
        return pool

    def _spill(self, rir: str) -> bool:
        """Extend ``rir``'s pool with its overflow block (once).

        Shuffled with the allocator RNG at the moment of exhaustion — the
        RNG state there is a pure function of the allocation history, so
        spilled worlds are exactly as reproducible as unspilled ones.
        """
        if rir in self._spilled:
            return False
        self._spilled.add(rir)
        overflow: List[int] = []
        for low, high in _RIR_OVERFLOW_BLOCKS.get(rir, ()):
            overflow.extend(range(low, high + 1))
        overflow = [asn for asn in overflow if is_valid_asn(asn)]
        if not overflow:
            return False
        self._rng.shuffle(overflow)
        self._pools[rir].extend(overflow)
        return True

    @property
    def allocated(self) -> Set[int]:
        """The set of ASNs handed out so far."""
        return set(self._allocated)

    def allocate(self, rir: str) -> int:
        """Allocate the next free ASN from ``rir``'s pool."""
        if rir not in self._pools:
            raise ConfigError(f"unknown RIR {rir!r}")
        pool = self._pools[rir]
        cursor = self._cursors[rir]
        while True:
            while cursor < len(pool):
                candidate = pool[cursor]
                cursor += 1
                if candidate not in self._allocated:
                    self._cursors[rir] = cursor
                    self._allocated.add(candidate)
                    return candidate
            if not self._spill(rir):
                self._cursors[rir] = cursor
                raise ConfigError(f"RIR {rir!r} exhausted its ASN pool")

    def allocate_many(self, rir: str, count: int) -> List[int]:
        """Allocate ``count`` ASNs from ``rir``."""
        return [self.allocate(rir) for _ in range(count)]

    def rir_of(self, asn: int) -> Optional[str]:
        """Return the RIR whose block contains ``asn``, if any."""
        for rir, blocks in _RIR_BLOCKS.items():
            if any(low <= asn <= high for low, high in blocks):
                return rir
        for rir, blocks in _RIR_OVERFLOW_BLOCKS.items():
            if any(low <= asn <= high for low, high in blocks):
                return rir
        return None

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._allocated))

    def __len__(self) -> int:
        return len(self._allocated)
