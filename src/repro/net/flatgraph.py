"""Flattened, read-only AS-graph views for the shared-memory plane.

:class:`~repro.net.topology.ASGraph` stores adjacency as per-node Python
lists — ideal for incremental construction, terrible for shipping to
process workers (the pickle walks every list and every int).  This module
flattens a finished graph into CSR (compressed sparse row) arrays:

* ``asns`` — ``array('q')``, the ASN table in dense-index order;
* per relationship kind (providers / customers / peers) an ``indptr``
  array (``'i'``, length ``n+1``) and an ``indices`` array (``'i'``)
  holding each node's neighbor indices back to back, preserving the
  original per-node insertion order.

:class:`FlatASGraph` wraps those arrays (or zero-copy ``memoryview`` casts
over a shared segment) behind exactly the read surface the Gao-Rexford
propagation in :mod:`repro.net.bgp` consumes — ``index_of`` / ``asn_at`` /
``providers[node]`` / ``customers[node]`` / ``peers[node]`` — so routing
trees built on a flat view are byte-identical to trees built on the
original mutable graph.

:class:`GraphArrays` implements the shm shareable protocol
(:mod:`repro.parallel.shm`), which is what lets a
:class:`~repro.net.monitors.RouteCollector` travel to workers as a name
card instead of a multi-megabyte pickle.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import TopologyError

__all__ = ["CSRRows", "FlatASGraph", "GraphArrays", "flatten_graph"]


class CSRRows:
    """Row-indexable CSR adjacency: ``rows[node]`` is a zero-copy slice."""

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: Sequence[int], indices: Sequence[int]) -> None:
        self.indptr = indptr
        self.indices = indices

    def __len__(self) -> int:
        return len(self.indptr) - 1

    def __getitem__(self, node: int) -> Sequence[int]:
        if node < 0:  # keep list-like negative indexing out of hot paths
            raise IndexError(node)
        return self.indices[self.indptr[node] : self.indptr[node + 1]]


class GraphArrays:
    """The flat buffers of one AS graph; shm-shareable.

    Holds seven C-contiguous buffers (``array.array`` when built locally,
    ``memoryview`` casts when rebuilt over a shared segment) in a fixed
    order: the ASN table, then (indptr, indices) per relationship kind.
    """

    FORMATS: Tuple[str, ...] = ("q", "i", "i", "i", "i", "i", "i")

    __slots__ = ("buffers",)

    def __init__(self, buffers: Sequence) -> None:
        if len(buffers) != len(self.FORMATS):
            raise ValueError(
                f"expected {len(self.FORMATS)} buffers, got {len(buffers)}"
            )
        self.buffers = tuple(buffers)

    def __shm_export__(self):
        return {}, list(zip(self.FORMATS, self.buffers))

    @classmethod
    def __shm_rebuild__(cls, meta, views) -> "GraphArrays":
        return cls(views)

    def view(self) -> "FlatASGraph":
        asns, p_ptr, p_idx, c_ptr, c_idx, e_ptr, e_idx = self.buffers
        return FlatASGraph(
            asns,
            CSRRows(p_ptr, p_idx),
            CSRRows(c_ptr, c_idx),
            CSRRows(e_ptr, e_idx),
        )


def _csr(rows: List[List[int]]) -> Tuple[array, array]:
    indptr = array("i", [0])
    indices = array("i")
    total = 0
    for row in rows:
        total += len(row)
        indptr.append(total)
        indices.extend(row)
    return indptr, indices


def flatten_graph(graph) -> GraphArrays:
    """Flatten a finished :class:`ASGraph` (or compatible) to CSR arrays."""
    n = len(graph)
    asns = array("q", (graph.asn_at(i) for i in range(n)))
    p_ptr, p_idx = _csr([list(graph.providers[i]) for i in range(n)])
    c_ptr, c_idx = _csr([list(graph.customers[i]) for i in range(n)])
    e_ptr, e_idx = _csr([list(graph.peers[i]) for i in range(n)])
    return GraphArrays((asns, p_ptr, p_idx, c_ptr, c_idx, e_ptr, e_idx))


class FlatASGraph:
    """Read-only AS graph over flat adjacency arrays.

    Implements the query surface route propagation needs; mutation methods
    intentionally do not exist.  ``index_of`` uses a dict rebuilt once at
    construction — a per-process O(n) cost, tiny next to copying the
    adjacency itself, and the only part of the structure that cannot live
    in a shared segment.
    """

    __slots__ = ("_asns", "_index", "providers", "customers", "peers")

    def __init__(
        self,
        asns: Sequence[int],
        providers: CSRRows,
        customers: CSRRows,
        peers: CSRRows,
    ) -> None:
        self._asns = asns
        self._index: Dict[int, int] = {asn: i for i, asn in enumerate(asns)}
        self.providers = providers
        self.customers = customers
        self.peers = peers

    def __contains__(self, asn: int) -> bool:
        return asn in self._index

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self._asns)

    @property
    def asns(self) -> Tuple[int, ...]:
        return tuple(self._asns)

    def index_of(self, asn: int) -> int:
        try:
            return self._index[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    def asn_at(self, index: int) -> int:
        return self._asns[index]

    def degree(self, asn: int) -> int:
        idx = self.index_of(asn)
        return (
            len(self.providers[idx]) + len(self.customers[idx]) + len(self.peers[idx])
        )
