"""AS-level topology with business relationships.

The graph stores the two relationship kinds used by Gao-Rexford routing
policies: customer-to-provider (``c2p``) and peer-to-peer (``p2p``).  It
offers validation, neighbor queries, and customer-cone computation (the
ASRank substrate behind Table 5 / Figure 5 of the paper).

Customer cones are served by a single-pass batch kernel: one reverse
topological sweep over the acyclic c2p DAG OR-accumulates per-node bitsets
(Python ints, one bit per dense index) bottom-up, so sizing *every* cone
costs one sweep instead of one BFS per AS.  The sweep is memoized against a
graph version counter and invalidated on mutation; the per-AS BFS is kept
as the :meth:`ASGraph._reference_cone_sizes` oracle for equivalence tests.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from functools import reduce
from itertools import chain
from operator import or_
from types import MappingProxyType
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import TopologyError
from repro.obs import get_metrics

__all__ = ["Relationship", "ASGraph"]

#: Shared single-bit masks (``_BIT_MASKS[i] == 1 << i``), grown on demand.
#: Python ints are immutable, so every sweep can slice-copy its seed bitsets
#: from this cache instead of re-allocating one shifted int per node.
_BIT_MASKS: List[int] = []


def _bit_masks(n: int) -> List[int]:
    """A fresh list of the first ``n`` single-bit masks."""
    if len(_BIT_MASKS) < n:
        _BIT_MASKS.extend(map((1).__lshift__, range(len(_BIT_MASKS), n)))
    return _BIT_MASKS[:n]


class Relationship(enum.Enum):
    """Business relationship between two ASes, from the first AS's view."""

    CUSTOMER = "customer"  # the other AS is my customer
    PROVIDER = "provider"  # the other AS is my provider
    PEER = "peer"


class ASGraph:
    """A mutable AS-level topology.

    ASes are identified by integer ASN.  Internally nodes get dense indices
    so that the BGP propagation code can use flat lists instead of dicts.
    """

    def __init__(self) -> None:
        self._index: Dict[int, int] = {}
        self._asns: List[int] = []
        self.providers: List[List[int]] = []  # provider *indices* per node
        self.customers: List[List[int]] = []
        self.peers: List[List[int]] = []
        # Set mirrors of the adjacency lists: O(1) membership for
        # relationship() and the duplicate/conflict checks on insertion.
        self._provider_sets: List[Set[int]] = []
        self._customer_sets: List[Set[int]] = []
        self._peer_sets: List[Set[int]] = []
        #: Indices (and ASNs) of nodes with at least one customer, in the
        #: order they first gained one.  Maintained on insertion so the cone
        #: sweep does not rescan all adjacency lists to find the transit
        #: minority.
        self._transit: List[int] = []
        self._transit_asns: List[int] = []
        #: All-ones size template in ASN-table order; the sweep copies it and
        #: overwrites the transit entries, since every stub cone is 1.
        self._ones: Dict[int, int] = {}
        self._edge_count = 0
        #: Bumped on every mutation; memoized query results (cone sizes, the
        #: asns view) are tagged with the version they were computed at and
        #: recomputed lazily when it moves.
        self._version = 0
        self._cone_sizes: Optional[Dict[int, int]] = None
        self._cone_version = -1
        self._asns_view: Optional[Tuple[int, ...]] = None

    # -- construction -------------------------------------------------------
    def add_as(self, asn: int) -> int:
        """Add an AS (idempotent); return its dense index."""
        if asn in self._index:
            return self._index[asn]
        if asn < 1:
            raise TopologyError(f"invalid ASN {asn}")
        idx = len(self._asns)
        self._index[asn] = idx
        self._asns.append(asn)
        self._ones[asn] = 1
        self.providers.append([])
        self.customers.append([])
        self.peers.append([])
        self._provider_sets.append(set())
        self._customer_sets.append(set())
        self._peer_sets.append(set())
        self._version += 1
        return idx

    def add_c2p(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise TopologyError(f"self-loop on AS{customer}")
        ci, pi = self.add_as(customer), self.add_as(provider)
        if pi in self._provider_sets[ci]:
            return
        if pi in self._customer_sets[ci] or pi in self._peer_sets[ci]:
            raise TopologyError(
                f"conflicting relationship between AS{customer} and AS{provider}"
            )
        if not self._customer_sets[pi]:
            self._transit.append(pi)
            self._transit_asns.append(provider)
        self.providers[ci].append(pi)
        self.customers[pi].append(ci)
        self._provider_sets[ci].add(pi)
        self._customer_sets[pi].add(ci)
        self._edge_count += 1
        self._version += 1

    def add_p2p(self, left: int, right: int) -> None:
        """Record a settlement-free peering between ``left`` and ``right``."""
        if left == right:
            raise TopologyError(f"self-loop on AS{left}")
        li, ri = self.add_as(left), self.add_as(right)
        if ri in self._peer_sets[li]:
            return
        if ri in self._provider_sets[li] or ri in self._customer_sets[li]:
            raise TopologyError(
                f"conflicting relationship between AS{left} and AS{right}"
            )
        self.peers[li].append(ri)
        self.peers[ri].append(li)
        self._peer_sets[li].add(ri)
        self._peer_sets[ri].add(li)
        self._edge_count += 1
        self._version += 1

    # -- queries --------------------------------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self._index

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self._asns)

    @property
    def asns(self) -> Tuple[int, ...]:
        """All ASNs in insertion order, as an immutable cached view.

        Returned as a tuple so hot loops can grab it repeatedly without a
        fresh list copy per access; the view is rebuilt only after the graph
        gains an AS.
        """
        if self._asns_view is None or len(self._asns_view) != len(self._asns):
            self._asns_view = tuple(self._asns)
        return self._asns_view

    def index_of(self, asn: int) -> int:
        """Dense index of ``asn`` (raises TopologyError if unknown)."""
        try:
            return self._index[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    def asn_at(self, index: int) -> int:
        """ASN stored at dense ``index``."""
        return self._asns[index]

    def num_edges(self) -> int:
        """Total number of relationship edges."""
        return self._edge_count

    def providers_of(self, asn: int) -> List[int]:
        """ASNs of the providers of ``asn``."""
        return [self._asns[i] for i in self.providers[self.index_of(asn)]]

    def customers_of(self, asn: int) -> List[int]:
        """ASNs of the customers of ``asn``."""
        return [self._asns[i] for i in self.customers[self.index_of(asn)]]

    def peers_of(self, asn: int) -> List[int]:
        """ASNs of the peers of ``asn``."""
        return [self._asns[i] for i in self.peers[self.index_of(asn)]]

    def degree(self, asn: int) -> int:
        """Total neighbor count of ``asn``."""
        idx = self.index_of(asn)
        return (
            len(self.providers[idx]) + len(self.customers[idx]) + len(self.peers[idx])
        )

    def relationship(self, asn_a: int, asn_b: int) -> Optional[Relationship]:
        """Relationship of ``asn_b`` from ``asn_a``'s point of view (O(1))."""
        ai, bi = self.index_of(asn_a), self.index_of(asn_b)
        if bi in self._provider_sets[ai]:
            return Relationship.PROVIDER
        if bi in self._customer_sets[ai]:
            return Relationship.CUSTOMER
        if bi in self._peer_sets[ai]:
            return Relationship.PEER
        return None

    def is_stub(self, asn: int) -> bool:
        """True if ``asn`` has no customers (an access/edge network)."""
        return not self.customers[self.index_of(asn)]

    def transit_free(self) -> List[int]:
        """ASNs with no providers (the Tier-1 clique candidates)."""
        return [asn for asn in self._asns if not self.providers[self._index[asn]]]

    # -- customer cones ---------------------------------------------------------
    def customer_cone(self, asn: int) -> FrozenSet[int]:
        """The customer cone of ``asn``: itself plus all ASes reachable by
        repeatedly following provider-to-customer edges (CAIDA's definition).
        """
        start = self.index_of(asn)
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for child in self.customers[node]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return frozenset(self._asns[i] for i in seen)

    def customer_cone_size(self, asn: int) -> int:
        """Number of ASes in the customer cone of ``asn`` (including itself)."""
        self.index_of(asn)  # surface unknown-AS errors as TopologyError
        return self.all_cone_sizes()[asn]

    def customer_cone_sizes(self, asns: Iterable[int]) -> Dict[int, int]:
        """Cone sizes for a batch of ASes (one shared sweep, then lookups)."""
        sizes = self.all_cone_sizes()
        if asns is self._asns_view:
            # Whole-table query (the ``graph.customer_cone_sizes(graph.asns)``
            # idiom): the sweep result already has exactly this key order.
            return dict(sizes)
        result: Dict[int, int] = {}
        for asn in asns:
            self.index_of(asn)
            result[asn] = sizes[asn]
        return result

    def all_cone_sizes(self) -> Mapping[int, int]:
        """Customer-cone size of *every* AS, from one bottom-up bitset sweep.

        Nodes are visited in reverse topological order of the c2p DAG
        (customers strictly before their providers); each node's cone is a
        Python-int bitset (bit ``i`` = dense index ``i``) OR-accumulated from
        its customers' cones, so shared subtrees are unioned in C-speed word
        operations instead of re-traversed.  O(V + E) sweeps with O(V/64)-word
        set unions, versus one O(V + E) BFS *per AS* for the naive kernel.

        The result is memoized until the graph mutates (see ``_version``)
        and returned as a read-only mapping.  Raises :class:`TopologyError`
        if the c2p hierarchy contains a cycle (cones are ill-defined then).
        """
        metrics = get_metrics()
        if self._cone_sizes is not None and self._cone_version == self._version:
            metrics.incr("graph.cone.cache_hits")
            return MappingProxyType(self._cone_sizes)
        if self._cone_sizes is not None:
            metrics.incr("graph.cone.invalidations")
        n = len(self._asns)
        customers = self.customers
        providers = self.providers
        # A stub's cone is itself, so seed every node with its own bit and
        # run the topological accumulation over transit nodes only (the
        # small minority with customers in Internet-like topologies).
        cones: List[int] = _bit_masks(n)
        transit = self._transit
        # Per provider: its number of unprocessed transit customers, counted
        # in one C-level pass over the transit nodes' provider lists.
        pending = Counter(chain.from_iterable(map(providers.__getitem__, transit)))
        # Level-synchronous Kahn: every provider of a transit node is itself
        # transit, so the walk stays inside `transit`; decrements are batched
        # per level through a Counter instead of iterating edges in Python.
        # Membership (not count) test: a Counter built from an iterable holds
        # only positive counts, and `in` avoids its Python-level __missing__.
        frontier = [i for i in transit if i not in pending]
        get_cone = cones.__getitem__
        visited = 0
        while frontier:
            visited += len(frontier)
            for node in frontier:
                kids = customers[node]
                width = len(kids)
                if width == 1:
                    cones[node] |= cones[kids[0]]
                elif width == 2:
                    cones[node] |= cones[kids[0]] | cones[kids[1]]
                else:
                    cones[node] = reduce(or_, map(get_cone, kids), cones[node])
            decrements = Counter(
                chain.from_iterable(map(providers.__getitem__, frontier))
            )
            frontier = []
            for provider, count in decrements.items():
                pending[provider] -= count
                if not pending[provider]:
                    frontier.append(provider)
        if visited != len(transit):
            raise TopologyError("customer-provider hierarchy contains a cycle")
        # Report sizes in insertion (ASN-table) order so batch consumers see
        # the same ordering the per-AS loop produced; stubs are all 1, so
        # only transit cones need a popcount (batched in C via map/zip).
        sizes = self._ones.copy()
        sizes.update(
            zip(self._transit_asns, map(int.bit_count, map(get_cone, transit)))
        )
        self._cone_sizes = sizes
        self._cone_version = self._version
        metrics.incr("graph.cone.sweeps")
        metrics.incr("graph.cone.nodes", n)
        return MappingProxyType(sizes)

    def _reference_cone_sizes(self, asns: Iterable[int]) -> Dict[int, int]:
        """Naive per-AS BFS cone sizing: the pre-kernel implementation,
        retained as the equivalence oracle for :meth:`all_cone_sizes`."""
        return {asn: len(self.customer_cone(asn)) for asn in asns}

    # -- validation -------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if broken.

        Invariants: provider/customer adjacency is mutually consistent, peer
        adjacency is symmetric, and the c2p relation is acyclic (no provider
        loops, which would break Gao-Rexford convergence).
        """
        for idx in range(len(self._asns)):
            for p in self.providers[idx]:
                if idx not in self.customers[p]:
                    raise TopologyError(
                        f"asymmetric c2p edge AS{self._asns[idx]}->AS{self._asns[p]}"
                    )
            for c in self.customers[idx]:
                if idx not in self.providers[c]:
                    raise TopologyError(
                        f"asymmetric p2c edge AS{self._asns[idx]}->AS{self._asns[c]}"
                    )
            for q in self.peers[idx]:
                if idx not in self.peers[q]:
                    raise TopologyError(
                        f"asymmetric p2p edge AS{self._asns[idx]}<->AS{self._asns[q]}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        indegree = [len(self.providers[i]) for i in range(len(self._asns))]
        queue = deque(i for i, d in enumerate(indegree) if d == 0)
        visited = 0
        while queue:
            node = queue.popleft()
            visited += 1
            for child in self.customers[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if visited != len(self._asns):
            raise TopologyError("customer-provider hierarchy contains a cycle")

    def connected_components(self) -> List[Set[int]]:
        """Connected components over all edge types (as ASN sets)."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in range(len(self._asns)):
            if start in seen:
                continue
            component = {start}
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                for nxt in (
                    self.providers[node] + self.customers[node] + self.peers[node]
                ):
                    if nxt not in seen:
                        seen.add(nxt)
                        component.add(nxt)
                        queue.append(nxt)
            components.append({self._asns[i] for i in component})
        return components
