"""AS-level topology with business relationships.

The graph stores the two relationship kinds used by Gao-Rexford routing
policies: customer-to-provider (``c2p``) and peer-to-peer (``p2p``).  It
offers validation, neighbor queries, and customer-cone computation (the
ASRank substrate behind Table 5 / Figure 5 of the paper).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import TopologyError

__all__ = ["Relationship", "ASGraph"]


class Relationship(enum.Enum):
    """Business relationship between two ASes, from the first AS's view."""

    CUSTOMER = "customer"  # the other AS is my customer
    PROVIDER = "provider"  # the other AS is my provider
    PEER = "peer"


class ASGraph:
    """A mutable AS-level topology.

    ASes are identified by integer ASN.  Internally nodes get dense indices
    so that the BGP propagation code can use flat lists instead of dicts.
    """

    def __init__(self) -> None:
        self._index: Dict[int, int] = {}
        self._asns: List[int] = []
        self.providers: List[List[int]] = []  # provider *indices* per node
        self.customers: List[List[int]] = []
        self.peers: List[List[int]] = []
        self._edges: Set[Tuple[int, int, str]] = set()

    # -- construction -------------------------------------------------------
    def add_as(self, asn: int) -> int:
        """Add an AS (idempotent); return its dense index."""
        if asn in self._index:
            return self._index[asn]
        if asn < 1:
            raise TopologyError(f"invalid ASN {asn}")
        idx = len(self._asns)
        self._index[asn] = idx
        self._asns.append(asn)
        self.providers.append([])
        self.customers.append([])
        self.peers.append([])
        return idx

    def add_c2p(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise TopologyError(f"self-loop on AS{customer}")
        ci, pi = self.add_as(customer), self.add_as(provider)
        key = (min(ci, pi), max(ci, pi), "c2p" if ci < pi else "p2c")
        rev = (key[0], key[1], "p2c" if key[2] == "c2p" else "c2p")
        peer_key = (key[0], key[1], "p2p")
        if key in self._edges:
            return
        if rev in self._edges or peer_key in self._edges:
            raise TopologyError(
                f"conflicting relationship between AS{customer} and AS{provider}"
            )
        self._edges.add(key)
        self.providers[ci].append(pi)
        self.customers[pi].append(ci)

    def add_p2p(self, left: int, right: int) -> None:
        """Record a settlement-free peering between ``left`` and ``right``."""
        if left == right:
            raise TopologyError(f"self-loop on AS{left}")
        li, ri = self.add_as(left), self.add_as(right)
        lo, hi = min(li, ri), max(li, ri)
        key = (lo, hi, "p2p")
        if key in self._edges:
            return
        if (lo, hi, "c2p") in self._edges or (lo, hi, "p2c") in self._edges:
            raise TopologyError(
                f"conflicting relationship between AS{left} and AS{right}"
            )
        self._edges.add(key)
        self.peers[li].append(ri)
        self.peers[ri].append(li)

    # -- queries --------------------------------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self._index

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self._asns)

    @property
    def asns(self) -> List[int]:
        """All ASNs in insertion order."""
        return list(self._asns)

    def index_of(self, asn: int) -> int:
        """Dense index of ``asn`` (raises TopologyError if unknown)."""
        try:
            return self._index[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    def asn_at(self, index: int) -> int:
        """ASN stored at dense ``index``."""
        return self._asns[index]

    def num_edges(self) -> int:
        """Total number of relationship edges."""
        return len(self._edges)

    def providers_of(self, asn: int) -> List[int]:
        """ASNs of the providers of ``asn``."""
        return [self._asns[i] for i in self.providers[self.index_of(asn)]]

    def customers_of(self, asn: int) -> List[int]:
        """ASNs of the customers of ``asn``."""
        return [self._asns[i] for i in self.customers[self.index_of(asn)]]

    def peers_of(self, asn: int) -> List[int]:
        """ASNs of the peers of ``asn``."""
        return [self._asns[i] for i in self.peers[self.index_of(asn)]]

    def degree(self, asn: int) -> int:
        """Total neighbor count of ``asn``."""
        idx = self.index_of(asn)
        return len(self.providers[idx]) + len(self.customers[idx]) + len(self.peers[idx])

    def relationship(self, asn_a: int, asn_b: int) -> Optional[Relationship]:
        """Relationship of ``asn_b`` from ``asn_a``'s point of view."""
        ai, bi = self.index_of(asn_a), self.index_of(asn_b)
        if bi in self.providers[ai]:
            return Relationship.PROVIDER
        if bi in self.customers[ai]:
            return Relationship.CUSTOMER
        if bi in self.peers[ai]:
            return Relationship.PEER
        return None

    def is_stub(self, asn: int) -> bool:
        """True if ``asn`` has no customers (an access/edge network)."""
        return not self.customers[self.index_of(asn)]

    def transit_free(self) -> List[int]:
        """ASNs with no providers (the Tier-1 clique candidates)."""
        return [asn for asn in self._asns if not self.providers[self._index[asn]]]

    # -- customer cones ---------------------------------------------------------
    def customer_cone(self, asn: int) -> FrozenSet[int]:
        """The customer cone of ``asn``: itself plus all ASes reachable by
        repeatedly following provider-to-customer edges (CAIDA's definition).
        """
        start = self.index_of(asn)
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for child in self.customers[node]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return frozenset(self._asns[i] for i in seen)

    def customer_cone_size(self, asn: int) -> int:
        """Number of ASes in the customer cone of ``asn`` (including itself)."""
        return len(self.customer_cone(asn))

    def customer_cone_sizes(self, asns: Iterable[int]) -> Dict[int, int]:
        """Cone sizes for a batch of ASes."""
        return {asn: self.customer_cone_size(asn) for asn in asns}

    # -- validation -------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if broken.

        Invariants: provider/customer adjacency is mutually consistent, peer
        adjacency is symmetric, and the c2p relation is acyclic (no provider
        loops, which would break Gao-Rexford convergence).
        """
        for idx in range(len(self._asns)):
            for p in self.providers[idx]:
                if idx not in self.customers[p]:
                    raise TopologyError(
                        f"asymmetric c2p edge AS{self._asns[idx]}->AS{self._asns[p]}"
                    )
            for c in self.customers[idx]:
                if idx not in self.providers[c]:
                    raise TopologyError(
                        f"asymmetric p2c edge AS{self._asns[idx]}->AS{self._asns[c]}"
                    )
            for q in self.peers[idx]:
                if idx not in self.peers[q]:
                    raise TopologyError(
                        f"asymmetric p2p edge AS{self._asns[idx]}<->AS{self._asns[q]}"
                    )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        indegree = [len(self.providers[i]) for i in range(len(self._asns))]
        queue = deque(i for i, d in enumerate(indegree) if d == 0)
        visited = 0
        while queue:
            node = queue.popleft()
            visited += 1
            for child in self.customers[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if visited != len(self._asns):
            raise TopologyError("customer-provider hierarchy contains a cycle")

    def connected_components(self) -> List[Set[int]]:
        """Connected components over all edge types (as ASN sets)."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in range(len(self._asns)):
            if start in seen:
                continue
            component = {start}
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                for nxt in (
                    self.providers[node] + self.customers[node] + self.peers[node]
                ):
                    if nxt not in seen:
                        seen.add(nxt)
                        component.add(nxt)
                        queue.append(nxt)
            components.append({self._asns[i] for i in component})
        return components
