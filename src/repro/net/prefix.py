"""IPv4 prefix arithmetic and a binary prefix trie.

Prefixes are value objects stored as ``(base, length)`` where ``base`` is the
32-bit network address as an int.  The :class:`PrefixTrie` supports the two
queries the paper's machinery needs:

* longest-prefix match (geolocation, origin lookup), and
* "addresses of p not covered by a more specific prefix" — the ``a(p, C)``
  term of the CTI formula (Appendix G).

The ``a(p, C)`` accounting is served by a single-pass batch kernel: one
post-order trie walk computes every stored prefix's covered-address count
bottom-up (a child subtree's covered union is disjoint from its sibling's,
so unions reduce to sums), making :func:`summarize_address_counts` and the
CTI address index O(nodes) instead of O(prefixes × subtree).  The walk is
memoized against a trie version counter and the pre-kernel per-prefix
implementation is retained as ``_reference_uncovered_addresses`` /
``_reference_summarize_address_counts`` oracles for equivalence tests.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import PrefixError
from repro.obs import get_metrics

__all__ = [
    "Prefix",
    "PrefixTrie",
    "summarize_address_counts",
    "sweep_uncovered_counts",
    "sweep_cut_points",
]

_MAX = 2**32


def _mask(length: int) -> int:
    """Return the netmask int for a prefix of ``length`` bits."""
    if length == 0:
        return 0
    return ((1 << length) - 1) << (32 - length)


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 network prefix, e.g. ``Prefix.parse("10.0.0.0/8")``."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise PrefixError(f"invalid prefix length {self.length}")
        if not 0 <= self.base < _MAX:
            raise PrefixError(f"invalid base address {self.base}")
        if self.base & ~_mask(self.length):
            raise PrefixError(
                f"base {self._format_addr(self.base)} has host bits set "
                f"for /{self.length}"
            )

    # -- construction -----------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse dotted-quad CIDR notation, e.g. ``"192.0.2.0/24"``."""
        try:
            addr_text, length_text = text.strip().split("/")
            octets = [int(part) for part in addr_text.split(".")]
            length = int(length_text)
        except (ValueError, AttributeError) as exc:
            raise PrefixError(f"malformed prefix {text!r}") from exc
        if len(octets) != 4 or any(not 0 <= o <= 255 for o in octets):
            raise PrefixError(f"malformed address in {text!r}")
        base = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        return cls(base, length)

    @classmethod
    def from_host(cls, address: int, length: int) -> "Prefix":
        """Build the /``length`` prefix containing host ``address``."""
        return cls(address & _mask(length), length)

    # -- properties -------------------------------------------------------
    @property
    def num_addresses(self) -> int:
        """Number of addresses covered (2^(32-length))."""
        return 1 << (32 - self.length)

    @property
    def last(self) -> int:
        """The highest address in the prefix."""
        return self.base + self.num_addresses - 1

    # -- set-like operations ----------------------------------------------
    def contains_address(self, address: int) -> bool:
        """True if ``address`` (an int) falls inside this prefix."""
        return self.base <= address <= self.last

    def covers(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return self.length <= other.length and (
            other.base & _mask(self.length)
        ) == self.base

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.covers(other) or other.covers(self)

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Yield all sub-prefixes of the given (longer) ``length``."""
        if length < self.length or length > 32:
            raise PrefixError(f"cannot split /{self.length} into /{length} subprefixes")
        step = 1 << (32 - length)
        for base in range(self.base, self.base + self.num_addresses, step):
            yield Prefix(base, length)

    def split(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two halves one bit longer."""
        if self.length >= 32:
            raise PrefixError("cannot split a /32")
        left = Prefix(self.base, self.length + 1)
        right = Prefix(self.base | (1 << (31 - self.length)), self.length + 1)
        return left, right

    # -- formatting ---------------------------------------------------------
    @staticmethod
    def _format_addr(address: int) -> str:
        return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    def __str__(self) -> str:
        return f"{self._format_addr(self.base)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"


V = TypeVar("V")


class _TrieNode(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """A binary trie mapping prefixes to values.

    Supports exact lookup, longest-prefix match for addresses, enumeration,
    and the CTI helper :meth:`uncovered_addresses`.
    """

    def __init__(self, items: Optional[Iterable[Tuple[Prefix, V]]] = None) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        self._size = 0
        #: Bumped on every insert; the batch uncovered-address map is
        #: memoized against it and lazily recomputed after mutation.
        self._version = 0
        self._uncovered: Optional[Dict[Prefix, int]] = None
        self._uncovered_version = -1
        if items is not None:
            for prefix, value in items:
                self.insert(prefix, value)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self._has_exact(prefix)

    def _walk_bits(self, prefix: Prefix) -> Iterator[int]:
        for i in range(prefix.length):
            yield (prefix.base >> (31 - i)) & 1

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for bit in self._walk_bits(prefix):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]  # type: ignore[assignment]
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        self._version += 1

    def _find_exact(self, prefix: Prefix) -> Optional[_TrieNode[V]]:
        node = self._root
        for bit in self._walk_bits(prefix):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node

    def _has_exact(self, prefix: Prefix) -> bool:
        node = self._find_exact(prefix)
        return node is not None and node.has_value

    def get(self, prefix: Prefix) -> Optional[V]:
        """Return the value stored exactly at ``prefix`` (None if absent)."""
        node = self._find_exact(prefix)
        if node is not None and node.has_value:
            return node.value
        return None

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Return the (prefix, value) of the longest prefix covering ``address``."""
        node = self._root
        best: Optional[Tuple[Prefix, V]] = None
        if node.has_value:
            best = (Prefix(0, 0), node.value)  # type: ignore[arg-type]
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (
                    Prefix.from_host(address, depth + 1),
                    node.value,  # type: ignore[arg-type]
                )
        return best

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Yield all (prefix, value) pairs in address order."""

        def _walk(
            node: _TrieNode[V], base: int, depth: int
        ) -> Iterator[Tuple[Prefix, V]]:
            if node.has_value:
                yield Prefix(base, depth), node.value  # type: ignore[misc]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_base = base | (bit << (31 - depth)) if depth < 32 else base
                    yield from _walk(child, child_base, depth + 1)

        yield from _walk(self._root, 0, 0)

    def covering(self, prefix: Prefix) -> List[Tuple[Prefix, V]]:
        """Return all stored prefixes that cover ``prefix`` (shortest first)."""
        result: List[Tuple[Prefix, V]] = []
        node = self._root
        if node.has_value:
            result.append((Prefix(0, 0), node.value))  # type: ignore[arg-type]
        depth = 0
        for bit in self._walk_bits(prefix):
            child = node.children[bit]
            if child is None:
                return result
            node = child
            depth += 1
            if node.has_value:
                result.append(
                    (Prefix.from_host(prefix.base, depth), node.value)  # type: ignore[arg-type]
                )
        return result

    def covered_by(self, prefix: Prefix) -> List[Tuple[Prefix, V]]:
        """Return all stored prefixes equal to or more specific than ``prefix``."""
        node = self._find_exact(prefix)
        if node is None:
            return []

        result: List[Tuple[Prefix, V]] = []

        def _walk(current: _TrieNode[V], base: int, depth: int) -> None:
            if current.has_value:
                result.append((Prefix(base, depth), current.value))  # type: ignore[arg-type]
            for bit in (0, 1):
                child = current.children[bit]
                if child is not None and depth < 32:
                    _walk(child, base | (bit << (31 - depth)), depth + 1)

        _walk(node, prefix.base, prefix.length)
        return result

    def uncovered_addresses(self, prefix: Prefix) -> int:
        """Addresses of ``prefix`` not covered by a *more specific* stored prefix.

        This is the ``a(p, C)`` accounting rule from the paper's Appendix G:
        when both 10.0.0.0/16 and 10.0.0.0/24 are announced, the /24's
        addresses are attributed to the /24 only.

        Stored prefixes are answered in O(1) from the memoized batch map of
        :meth:`uncovered_address_counts`; unstored prefixes fall back to the
        per-query subtree walk.
        """
        if self._has_exact(prefix):
            return self.uncovered_address_counts()[prefix]
        return self._reference_uncovered_addresses(prefix)

    def uncovered_address_counts(self) -> Dict[Prefix, int]:
        """``a(p, C)`` for *every* stored prefix, from one post-order walk.

        A stored prefix covers its whole span, so a subtree's covered union
        is its span when the root is stored and the sum of its two disjoint
        child-subtree unions otherwise; each stored prefix's uncovered count
        is then its span minus its children's covered unions.  One O(nodes)
        pass replaces the O(subtree + sort) walk per stored prefix.

        The map is memoized until the next :meth:`insert`; treat it as
        read-only.
        """
        if self._uncovered is not None and self._uncovered_version == self._version:
            get_metrics().incr("prefix.summary.cache_hits")
            return self._uncovered
        counts: Dict[Prefix, int] = {}
        nodes_walked = 0

        def _walk(node: _TrieNode[V], base: int, depth: int) -> int:
            """Return the subtree's covered-address union; record uncovered
            counts for stored prefixes along the way."""
            nonlocal nodes_walked
            nodes_walked += 1
            child_covered = 0
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_base = base | (bit << (31 - depth)) if depth < 32 else base
                    child_covered += _walk(child, child_base, depth + 1)
            if node.has_value:
                span = 1 << (32 - depth)
                counts[Prefix(base, depth)] = span - child_covered
                return span
            return child_covered

        _walk(self._root, 0, 0)
        self._uncovered = counts
        self._uncovered_version = self._version
        metrics = get_metrics()
        metrics.incr("prefix.summary.batches")
        metrics.incr("prefix.summary.nodes", nodes_walked)
        metrics.incr("prefix.summary.prefixes", len(counts))
        return counts

    def _reference_uncovered_addresses(self, prefix: Prefix) -> int:
        """Naive per-prefix subtree walk: the pre-kernel implementation,
        retained as the equivalence oracle for the batch map."""
        more_specifics = [
            p for p, _ in self.covered_by(prefix) if p.length > prefix.length
        ]
        if not more_specifics:
            return prefix.num_addresses
        # More specifics can nest; count the union of their address spans by
        # keeping only the maximal (shortest) ones.
        more_specifics.sort(key=lambda p: (p.base, p.length))
        covered = 0
        current_end = -1
        for specific in more_specifics:
            if specific.base > current_end:
                covered += specific.num_addresses
                current_end = specific.last
            elif specific.last > current_end:
                covered += specific.last - current_end
                current_end = specific.last
        return prefix.num_addresses - covered


def sweep_uncovered_counts(
    bases: "array",
    lengths: "array",
    start: int = 0,
    stop: Optional[int] = None,
) -> "array":
    """``a(p, C)`` for a (base, length)-sorted prefix table, no trie.

    One linear stack sweep over the sorted columns replaces the trie build
    plus post-order walk: because aligned prefixes either nest or are
    disjoint, the (base, length) sort visits every prefix after its
    ancestors, so an explicit stack of open ancestors is all the structure
    the accounting needs.  Each popped prefix charges its whole span to the
    nearest still-open stored ancestor (the trie's "a stored prefix covers
    its span" rule), and its own uncovered count is its span minus what its
    maximal stored descendants charged it.  Duplicate (base, length) rows
    (one trie node, several table rows) replay the first row's count.

    ``[start, stop)`` must begin and end at points where no earlier prefix
    spans across (see :func:`sweep_cut_points`), which is what makes the
    sweep embarrassingly parallel; the default sweeps the whole table.
    Returns an ``array('q')`` of uncovered counts in row order.
    """
    if stop is None:
        stop = len(bases)
    out = array("q", bytes(8 * (stop - start)))
    # Parallel stacks of the currently-open ancestor chain.
    st_end: List[int] = []  # last covered address
    st_span: List[int] = []  # full span
    st_out: List[int] = []  # output slot
    st_cov: List[int] = []  # addresses claimed by maximal stored descendants
    # Duplicate rows alias their first occurrence, applied after the sweep
    # (the first occurrence's slot is only final once it pops off the stack).
    aliases: List[Tuple[int, int]] = []
    prev_base = prev_length = prev_slot = -1
    for i in range(start, stop):
        base = bases[i]
        length = lengths[i]
        if base == prev_base and length == prev_length:
            aliases.append((i - start, prev_slot))
            continue
        while st_end and st_end[-1] < base:
            st_end.pop()
            span = st_span.pop()
            out[st_out.pop()] = span - st_cov.pop()
            if st_cov:
                st_cov[-1] += span
        span = 1 << (32 - length)
        st_end.append(base + span - 1)
        st_span.append(span)
        st_out.append(i - start)
        st_cov.append(0)
        prev_base, prev_length, prev_slot = base, length, i - start
    while st_end:
        st_end.pop()
        span = st_span.pop()
        out[st_out.pop()] = span - st_cov.pop()
        if st_cov:
            st_cov[-1] += span
    for dup_slot, first_slot in aliases:
        out[dup_slot] = out[first_slot]
    return out


def sweep_cut_points(bases: "array", lengths: "array", parts: int) -> List[int]:
    """Split a sorted prefix table into independently sweepable ranges.

    A row index is a valid cut when no earlier prefix's span crosses it
    (the ancestor stack is provably empty there), so each returned range
    can be swept by :func:`sweep_uncovered_counts` with no shared state.
    Returns ``parts + 1`` (or fewer) boundaries starting at 0 and ending
    at ``len(bases)``; in Internet-like tables the cuts land between the
    per-RIR address blocks.
    """
    n = len(bases)
    if parts <= 1 or n == 0:
        return [0, n]
    cuts: List[int] = []
    max_end = -1
    for i in range(n):
        base = bases[i]
        if base > max_end:
            cuts.append(i)
        end = base + (1 << (32 - lengths[i])) - 1
        if end > max_end:
            max_end = end
    target = max(1, n // parts)
    bounds = [0]
    for cut in cuts:
        if cut - bounds[-1] >= target and cut < n:
            bounds.append(cut)
    if bounds[-1] != n:
        bounds.append(n)
    return bounds


def summarize_address_counts(prefixes: Iterable[Tuple[Prefix, V]]) -> Dict[V, int]:
    """Aggregate announced address counts per value (e.g. per origin AS).

    Overlapping announcements are de-duplicated with the more-specific rule:
    each address is attributed to the longest prefix covering it.  One
    post-order pass sizes every prefix's uncovered span; a second in-order
    pass accumulates per value, preserving the historical (address-order)
    aggregation so results stay byte-identical to the per-prefix original.
    """
    trie: PrefixTrie[V] = PrefixTrie()
    for prefix, value in prefixes:
        trie.insert(prefix, value)
    uncovered = trie.uncovered_address_counts()
    totals: Dict[V, int] = {}
    for prefix, value in trie.items():
        totals[value] = totals.get(value, 0) + uncovered[prefix]
    return totals


def _reference_summarize_address_counts(
    prefixes: Iterable[Tuple[Prefix, V]]
) -> Dict[V, int]:
    """Pre-kernel :func:`summarize_address_counts`: one subtree walk per
    stored prefix.  Retained as the equivalence oracle."""
    trie: PrefixTrie[V] = PrefixTrie()
    for prefix, value in prefixes:
        trie.insert(prefix, value)
    totals: Dict[V, int] = {}
    for prefix, value in trie.items():
        totals[value] = totals.get(value, 0) + trie._reference_uncovered_addresses(
            prefix
        )
    return totals
