"""Flat-array route-propagation kernel (the CTI hot loop).

:func:`repro.net.bgp.propagate_routes` and
:func:`repro.net.routing.propagate_policy_routes` both walk per-node
Python adjacency through ``sorted()`` calls *inside* the propagation
loops: every origin re-sorts every adjacency row it touches and performs
two full-graph ``sorted(..., key=lambda ...)`` passes (phase-2 exporters,
phase-3 seeds).  At internet scale (~68k ASes) that constant factor is
94 % of total wall time — one routing tree per scored origin, thousands
of origins per run.

:class:`PropagationKernel` removes it.  Per *graph* (not per origin) it
builds one CSR image whose rows are pre-sorted by neighbor ASN — the
exact tie-break order every phase needs — with policy down-edges pruned
at build time, so the per-origin propagation touches nothing but flat
``bytearray`` / ``array('i')`` buffers:

* ``dist`` / ``route_class`` — ``bytearray`` stamped from a preallocated
  all-``_UNREACHED`` template (one C memcpy per origin);
* ``next_hop`` — ``array('i')`` stamped from an all ``-1`` template;
* frontier *buckets* — one reusable list per hop distance, replacing the
  full-graph ``sorted(range(n), key=...)`` passes: nodes are appended to
  their hop bucket during BFS and each bucket is sorted by ASN only once,
  so exporter order ``(dist, asn)`` is reproduced with per-bucket sorts
  over already-partitioned data.

The decision sequence — phase order, first-offer-wins adoption, ASN
tie-breaks, hijack seeding, leak relaxation — replicates the reference
oracles exactly, which is what keeps every tree (and therefore every CTI
float) byte-identical; ``tests/test_routing.py`` pins kernel vs both
oracles across 50 randomized seeds per policy feature.

Buffers are owned by the kernel and reused across origins **within** one
kernel (one kernel per collector cache per worker).  Returned trees
snapshot nothing: the per-origin result arrays are stamped fresh from the
templates each call, so a tree handed out earlier is never mutated by a
later propagation (the buffer-isolation suite asserts this).
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Tuple

from repro.errors import TopologyError
from repro.net.flatgraph import CSRRows, FlatASGraph

__all__ = ["PropagationKernel"]

# Mirror the oracle constants without importing repro.net.bgp (bgp imports
# this module; keeping the dependency one-way avoids an import cycle).
_UNREACHED = 255
_ORIGIN = 0
_CUSTOMER = 1
_PEER = 2
_PROVIDER = 3


def _sorted_csr(graph, rows_of, order: List[int]) -> Tuple[List[int], List[int]]:
    """One relationship kind flattened to CSR with ASN-sorted rows.

    ``order`` maps a neighbor's dense index to its ASN rank; sorting each
    row by rank is exactly the ``sorted(row, key=graph.asn_at)`` the
    oracles perform per visit — done here once per graph instead.
    Plain Python lists beat ``array('i')`` in the propagation loops:
    list items are already boxed ints, so the hot path never re-boxes.
    """
    indptr: List[int] = [0]
    indices: List[int] = []
    rank = order.__getitem__
    for node in range(len(graph)):
        row = sorted(rows_of[node], key=rank)
        indices.extend(row)
        indptr.append(len(indices))
    return indptr, indices


def _prune_edges(indptr, indices, node_count, down) -> Tuple[List[int], List[int]]:
    """Drop down-edges from a CSR image (policy-disabled adjacencies)."""
    new_ptr: List[int] = [0]
    new_idx: List[int] = []
    for node in range(node_count):
        for j in range(indptr[node], indptr[node + 1]):
            neighbor = indices[j]
            pair = (node, neighbor) if node <= neighbor else (neighbor, node)
            if pair not in down:
                new_idx.append(neighbor)
        new_ptr.append(len(new_idx))
    return new_ptr, new_idx


class PropagationKernel:
    """Reusable flat-array valley-free propagation over one fixed graph.

    ``graph`` may be a mutable :class:`~repro.net.topology.ASGraph` or a
    read-only :class:`~repro.net.flatgraph.FlatASGraph`; the kernel keeps
    its own ASN-sorted CSR image either way.  ``policy`` is an optional
    :class:`~repro.net.routing.RoutingPolicy`: down-edges are pruned from
    the image at build time (a down edge never carries a route in any
    phase), hijacks seed extra announcers, leakers trigger the shared
    relaxation pass.  A kernel is tied to the (graph, policy) snapshot it
    was built from — callers that mutate the graph build a fresh kernel,
    exactly like the tree caches they already hold.
    """

    __slots__ = (
        "_source",
        "_policy",
        "_n",
        "_asns",
        "_p_ptr",
        "_p_idx",
        "_c_ptr",
        "_c_idx",
        "_e_ptr",
        "_e_idx",
        "_dist_template",
        "_hop_template",
        "_buckets",
        "_leak_graph",
        "trees_built",
    )

    def __init__(self, graph, policy=None) -> None:
        if policy is not None and policy.is_neutral:
            policy = None
        self._source = graph
        self._policy = policy
        n = len(graph)
        self._n = n
        self._asns: List[int] = [graph.asn_at(i) for i in range(n)]
        # ASN rank per dense index: sorting rows by rank == sorting by ASN,
        # with integer list lookups instead of method-call keys.
        order = [0] * n
        for rank, idx in enumerate(sorted(range(n), key=self._asns.__getitem__)):
            order[idx] = rank
        self._p_ptr, self._p_idx = _sorted_csr(graph, graph.providers, order)
        self._c_ptr, self._c_idx = _sorted_csr(graph, graph.customers, order)
        self._e_ptr, self._e_idx = _sorted_csr(graph, graph.peers, order)
        if policy is not None and policy.down_edges:
            down = self._down_pairs(policy)
            self._p_ptr, self._p_idx = _prune_edges(self._p_ptr, self._p_idx, n, down)
            self._c_ptr, self._c_idx = _prune_edges(self._c_ptr, self._c_idx, n, down)
            self._e_ptr, self._e_idx = _prune_edges(self._e_ptr, self._e_idx, n, down)
        self._dist_template = bytes([_UNREACHED]) * n
        self._hop_template = array("i", [-1]) * n
        #: Reusable per-hop frontier buckets (grown on demand, cleared per
        #: origin); replaces the oracle's full-graph (dist, asn) sorts.
        self._buckets: List[List[int]] = []
        self._leak_graph: Optional[FlatASGraph] = None
        self.trees_built = 0

    def _down_pairs(self, policy):
        pairs = set()
        index_of = self._index_of
        for a, b in policy.down_edges:
            try:
                ia, ib = index_of(a), index_of(b)
            except TopologyError:
                continue
            pairs.add((ia, ib) if ia <= ib else (ib, ia))
        return pairs

    def _index_of(self, asn: int) -> int:
        return self._source.index_of(asn)

    @property
    def policy(self):
        return self._policy

    def __len__(self) -> int:
        return self._n

    # -- the hot loop --------------------------------------------------------
    def propagate(self, origin: int):
        """The routing tree toward ``origin`` (a fresh RoutingTree).

        Decision-for-decision identical to the reference oracles; see the
        module docstring for the order argument.
        """
        from repro.net.bgp import RoutingTree

        if origin not in self._source:
            raise TopologyError(f"origin AS{origin} not in graph")

        n = self._n
        asns = self._asns
        policy = self._policy

        # Per-origin result arrays: stamped from the templates (two
        # memcpys), never shared with previously returned trees.
        dist = bytearray(self._dist_template)
        route_class = bytearray(self._dist_template)
        next_hop = self._hop_template[:]

        # Seeds: the origin plus (under a hijack) every extra announcer
        # present in the graph, all at distance zero, frontier in ASN order.
        origin_idx = self._index_of(origin)
        seeds = [origin_idx]
        if policy is not None and policy.hijacks:
            for announcer in policy.hijackers_of(origin):
                try:
                    seeds.append(self._index_of(announcer))
                except TopologyError:
                    continue
            if len(seeds) > 1:
                seeds.sort(key=asns.__getitem__)
        for seed in seeds:
            dist[seed] = 0
            route_class[seed] = _ORIGIN

        buckets = self._buckets
        for bucket in buckets:
            del bucket[:]

        def bucket_at(hop: int) -> List[int]:
            while len(buckets) <= hop:
                buckets.append([])
            return buckets[hop]

        bucket_at(0).extend(seeds)

        # Phase 1: customer routes climb provider edges (valley-free
        # "uphill").  Rows are pre-sorted by ASN, so the first offer a
        # provider sees within a hop is the lowest-ASN one — the oracle's
        # tie-break — and BFS order gives shortest-first across hops.
        p_ptr, p_idx = self._p_ptr, self._p_idx
        frontier = seeds
        hop = 0
        while frontier:
            hop += 1
            next_frontier: List[int] = []
            append = next_frontier.append
            for node in frontier:
                for j in range(p_ptr[node], p_ptr[node + 1]):
                    provider = p_idx[j]
                    if dist[provider] == _UNREACHED:
                        dist[provider] = hop
                        route_class[provider] = _CUSTOMER
                        next_hop[provider] = node
                        append(provider)
            if next_frontier:
                bucket_at(hop).extend(next_frontier)
            frontier = next_frontier

        # Phase 2: every customer-or-origin route is exported one hop
        # across peering edges.  The oracle visits exporters sorted by
        # (dist, asn); the hop buckets are already partitioned by dist, so
        # sorting each bucket by ASN reproduces that global order with
        # per-bucket work.  First recorded offer per peer wins.
        e_ptr, e_idx = self._e_ptr, self._e_idx
        rank = asns.__getitem__
        peer_updates: List[Tuple[int, int, int]] = []
        record = peer_updates.append
        for bucket in buckets:
            if len(bucket) > 1:
                bucket.sort(key=rank)
            for node in bucket:
                offered = dist[node] + 1
                for j in range(e_ptr[node], e_ptr[node + 1]):
                    peer = e_idx[j]
                    if dist[peer] == _UNREACHED:
                        record((peer, node, offered))
        for peer, via, d in peer_updates:
            if dist[peer] == _UNREACHED:
                dist[peer] = d
                route_class[peer] = _PEER
                next_hop[peer] = via
                bucket_at(d).append(peer)

        # Phase 3: provider routes sink down customer edges ("downhill").
        # The oracle seeds its FIFO with every routed node sorted by
        # (dist, asn); replaying the buckets in hop order — re-sorting only
        # the ones phase 2 extended — yields the identical queue prefix,
        # and discovered customers append in the same (FIFO, ASN-sorted
        # row) order the oracle's deque produces.
        c_ptr, c_idx = self._c_ptr, self._c_idx
        queue: List[int] = []
        for bucket in buckets:
            if len(bucket) > 1:
                bucket.sort(key=rank)
            queue.extend(bucket)
        push = queue.append
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            down_dist = dist[node] + 1
            for j in range(c_ptr[node], c_ptr[node + 1]):
                customer = c_idx[j]
                if dist[customer] == _UNREACHED:
                    dist[customer] = down_dist
                    route_class[customer] = _PROVIDER
                    next_hop[customer] = node
                    push(customer)

        if policy is not None and policy.leakers:
            self._relax_leaks(policy, dist, route_class, next_hop)

        self.trees_built += 1
        return RoutingTree(self._source, origin, next_hop, dist, route_class)

    # -- leak relaxation -----------------------------------------------------
    def _relax_leaks(self, policy, dist, route_class, next_hop) -> None:
        """Run the shared leak-relaxation pass over the kernel's arrays.

        Leaks are rare (a policy feature, never the neutral hot path), so
        this delegates to the oracle's relaxation worklist over a flat view
        of the kernel's pruned adjacency — same offers, same strict-
        improvement adoption, same loop refusal.  Down edges are already
        pruned from the view, so the edge filter is a constant ``False``.
        """
        from repro.net.routing import _relax_leaks

        if self._leak_graph is None:
            self._leak_graph = FlatASGraph(
                self._asns,
                CSRRows(self._p_ptr, self._p_idx),
                CSRRows(self._c_ptr, self._c_idx),
                CSRRows(self._e_ptr, self._e_idx),
            )
        _relax_leaks(
            self._leak_graph,
            policy,
            dist,
            route_class,
            next_hop,
            lambda a, b: False,
        )
