"""Network primitives: ASNs, IPv4 prefixes, AS-level topology and BGP.

This subpackage is the substrate that the paper's technical data sources are
derived from: CAIDA-style prefix-to-AS tables, BGP paths for the CTI metric,
and customer cones for ASRank.
"""

from repro.net.asn import ASN, ASNAllocator
from repro.net.prefix import Prefix, PrefixTrie, summarize_address_counts
from repro.net.topology import ASGraph, Relationship
from repro.net.bgp import Route, RoutingTree, propagate_routes
from repro.net.routing import (
    NEUTRAL_POLICY,
    RoutingPolicy,
    propagate_policy_routes,
)
from repro.net.monitors import Monitor, MonitorSet, RouteCollector

__all__ = [
    "ASN",
    "ASNAllocator",
    "Prefix",
    "PrefixTrie",
    "summarize_address_counts",
    "ASGraph",
    "Relationship",
    "Route",
    "RoutingTree",
    "propagate_routes",
    "RoutingPolicy",
    "NEUTRAL_POLICY",
    "propagate_policy_routes",
    "Monitor",
    "MonitorSet",
    "RouteCollector",
]
