"""Policy-aware valley-free route propagation.

:mod:`repro.net.bgp` computes Gao-Rexford routing trees for a *pristine*
topology: the tree toward an origin is a pure function of the AS graph, so
policy-sensitive events — depeering, route leaks, prefix hijacks — cannot
perturb monitor-observed paths at all.  This module generalizes the same
engine with an explicit :class:`RoutingPolicy`:

* ``down_edges`` — adjacencies administratively disabled (depeering, link
  failure, sanctions).  Routes simply never cross a down edge.
* ``hijacks`` — per-victim sets of additional announcers.  A hijacked
  origin propagates from multiple seeds; each AS picks whichever announcer
  wins under normal preference rules, exactly like a multiple-origin
  conflict in real BGP.
* ``leakers`` — ASes that re-export *every* route to *every* neighbor,
  violating valley-free export (the classic route-leak incident).  Leaked
  routes still compete on the receiver's normal local-pref / path-length /
  lowest-ASN preference order, which is what makes leaks attract traffic:
  a leaked route arrives at the leaker's providers as a customer route,
  the most-preferred class.

Under a *neutral* policy (nothing down, nobody leaking, no hijacks) the
engine reproduces :func:`repro.net.bgp.propagate_routes` decision-for-
decision; the static-tree module is retained as the reference oracle and a
randomized equivalence suite holds the two implementations together.

Propagation stays near-linear: the three valley-free phases are the same
single-pass BFS-by-preference-class as the oracle, and the leak relaxation
afterwards is a level-synchronous worklist that only touches the subgraph a
leak actually improves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import TopologyError
from repro.net.bgp import RouteClass, RoutingTree, _UNREACHED

__all__ = [
    "RoutingPolicy",
    "NEUTRAL_POLICY",
    "propagate_policy_routes",
    "PolicyRoutingCache",
]


def _normalize_edge(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class RoutingPolicy:
    """A declarative perturbation of valley-free route propagation.

    Instances are immutable, hashable, picklable, and canonically ordered so
    that two policies built from the same facts compare (and digest) equal
    regardless of construction order.  Use :meth:`build` rather than the
    raw constructor; it normalizes the field encodings.
    """

    down_edges: Tuple[Tuple[int, int], ...] = ()
    leakers: Tuple[int, ...] = ()
    hijacks: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()

    @classmethod
    def build(
        cls,
        down_edges: Iterable[Tuple[int, int]] = (),
        leakers: Iterable[int] = (),
        hijacks: Optional[Mapping[int, Iterable[int]]] = None,
    ) -> "RoutingPolicy":
        """Normalize and freeze a policy.

        ``down_edges`` pairs are unordered (an adjacency is down in both
        directions); ``hijacks`` maps a victim origin ASN to the extra
        ASNs announcing its prefixes.
        """
        edges = tuple(sorted({_normalize_edge(a, b) for a, b in down_edges}))
        leak = tuple(sorted(set(leakers)))
        hj: List[Tuple[int, Tuple[int, ...]]] = []
        for victim, announcers in sorted((hijacks or {}).items()):
            extra = tuple(sorted(set(announcers) - {victim}))
            if extra:
                hj.append((victim, extra))
        return cls(down_edges=edges, leakers=leak, hijacks=tuple(hj))

    @property
    def is_neutral(self) -> bool:
        """True when the policy cannot change any routing decision."""
        return not (self.down_edges or self.leakers or self.hijacks)

    def hijackers_of(self, origin: int) -> Tuple[int, ...]:
        """Extra announcer ASNs for ``origin`` (empty when not hijacked)."""
        for victim, announcers in self.hijacks:
            if victim == origin:
                return announcers
        return ()

    def as_dict(self) -> dict:
        """JSON-friendly canonical encoding (also the digest/shm form)."""
        return {
            "down_edges": [list(pair) for pair in self.down_edges],
            "leakers": list(self.leakers),
            "hijacks": [[victim, list(extra)] for victim, extra in self.hijacks],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RoutingPolicy":
        return cls.build(
            down_edges=[tuple(pair) for pair in data.get("down_edges", ())],
            leakers=data.get("leakers", ()),
            hijacks={victim: extra for victim, extra in data.get("hijacks", ())},
        )


NEUTRAL_POLICY = RoutingPolicy()

_ORIGIN = int(RouteClass.ORIGIN)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)

# Leak relaxation is monotone (a node's selection key only ever improves),
# so it terminates on its own; the round cap is a defensive backstop that
# would only trip on a bug, never on a valid topology.
_MAX_LEAK_ROUNDS = 10_000


def propagate_policy_routes(
    graph,
    origin: int,
    policy: Optional[RoutingPolicy] = None,
) -> RoutingTree:
    """Compute the routing tree toward ``origin`` under ``policy``.

    Delegates to the flat-array :class:`~repro.net.propagation.
    PropagationKernel` (down-edges pruned from the CSR image at build
    time, hijacks seeded at distance zero, leak relaxation over the flat
    view), which makes the decisions of
    :func:`_reference_propagate_policy_routes` bit-for-bit; the randomized
    equivalence suite in ``tests/test_routing.py`` holds the kernel to both
    oracles under every policy feature.  ``graph`` may be a mutable
    :class:`~repro.net.topology.ASGraph` or a read-only
    :class:`~repro.net.flatgraph.FlatASGraph` view.  Callers routing many
    origins under one policy should hold a :class:`PolicyRoutingCache`,
    which reuses a single kernel across origins.
    """
    from repro.net.propagation import PropagationKernel

    return PropagationKernel(graph, policy).propagate(origin)


def _reference_propagate_policy_routes(
    graph,
    origin: int,
    policy: Optional[RoutingPolicy] = None,
) -> RoutingTree:
    """The original per-edge policy propagation, retained as the oracle.

    With a neutral (or absent) policy this makes exactly the decisions of
    :func:`repro.net.bgp._reference_propagate_routes` — same phases, same
    iteration order, same tie-breaks.  Adjacency rows are ASN-sorted once
    up front (hoisted out of the per-visit inner loops; identical sort
    keys, bit-identical output).
    """
    policy = NEUTRAL_POLICY if policy is None else policy
    if origin not in graph:
        raise TopologyError(f"origin AS{origin} not in graph")

    n = len(graph)
    dist = [_UNREACHED] * n
    route_class = [_UNREACHED] * n
    next_hop = [-1] * n

    # Hijacks seed extra announcers at distance zero; every AS then selects
    # among announcers with its ordinary preference rules.
    seeds = [graph.index_of(origin)]
    for announcer in policy.hijackers_of(origin):
        if announcer in graph:
            seeds.append(graph.index_of(announcer))
    for seed in seeds:
        dist[seed] = 0
        route_class[seed] = _ORIGIN

    down = _down_index_pairs(graph, policy)

    def edge_down(a: int, b: int) -> bool:
        return bool(down) and _normalize_edge(a, b) in down

    # Hoisted adjacency-class resolution: one ASN-order sort per row, not
    # one per visit (identical sort keys, so output is bit-identical).
    asn_at = graph.asn_at
    sorted_providers = [sorted(graph.providers[i], key=asn_at) for i in range(n)]
    sorted_customers = [sorted(graph.customers[i], key=asn_at) for i in range(n)]
    sorted_peers = [sorted(graph.peers[i], key=asn_at) for i in range(n)]

    # Phase 1: customer routes climb provider edges (valley-free "uphill").
    frontier = sorted(seeds, key=asn_at)
    hop = 0
    while frontier:
        hop += 1
        next_frontier: List[int] = []
        for node in frontier:
            for provider in sorted_providers[node]:
                if edge_down(node, provider):
                    continue
                if dist[provider] == _UNREACHED:
                    dist[provider] = hop
                    route_class[provider] = _CUSTOMER
                    next_hop[provider] = node
                    next_frontier.append(provider)
        frontier = next_frontier

    # Phase 2: one hop across peering edges, exporters in preference order.
    exporters = sorted(
        (i for i in range(n) if route_class[i] in (_ORIGIN, _CUSTOMER)),
        key=lambda i: (dist[i], graph.asn_at(i)),
    )
    peer_updates: List[Tuple[int, int, int]] = []
    for node in exporters:
        for peer in sorted_peers[node]:
            if edge_down(node, peer):
                continue
            if dist[peer] == _UNREACHED:
                peer_updates.append((peer, node, dist[node] + 1))
    for peer, via, d in peer_updates:
        if dist[peer] == _UNREACHED:
            dist[peer] = d
            route_class[peer] = _PEER
            next_hop[peer] = via

    # Phase 3: provider routes sink down customer edges ("downhill").
    queue = deque(
        sorted(
            (i for i in range(n) if dist[i] != _UNREACHED),
            key=lambda i: (dist[i], graph.asn_at(i)),
        )
    )
    while queue:
        node = queue.popleft()
        for customer in sorted_customers[node]:
            if edge_down(node, customer):
                continue
            if dist[customer] == _UNREACHED:
                dist[customer] = dist[node] + 1
                route_class[customer] = _PROVIDER
                next_hop[customer] = node
                queue.append(customer)

    if policy.leakers:
        _relax_leaks(graph, policy, dist, route_class, next_hop, edge_down)

    return RoutingTree(graph, origin, next_hop, dist, route_class)


def _down_index_pairs(graph, policy: RoutingPolicy) -> FrozenSet[Tuple[int, int]]:
    """Policy down-edges translated to normalized dense-index pairs."""
    if not policy.down_edges:
        return frozenset()
    pairs: Set[Tuple[int, int]] = set()
    for a, b in policy.down_edges:
        if a in graph and b in graph:
            pairs.add(_normalize_edge(graph.index_of(a), graph.index_of(b)))
    return frozenset(pairs)


def _relax_leaks(
    graph,
    policy: RoutingPolicy,
    dist: List[int],
    route_class: List[int],
    next_hop: List[int],
    edge_down,
) -> None:
    """Level-synchronous relaxation once leakers re-export everything.

    After the three valley-free phases, each routed leaker offers its route
    to *all* neighbors (not just customers); any neighbor whose selection
    strictly improves adopts the leaked route and re-exports under its own
    rules next round, so the improvement front expands breadth-first.  A
    node's selection key ``(route class at receiver, path length, next-hop
    ASN)`` only ever decreases, which bounds total work and guarantees
    termination; AS-path loops are prevented by refusing any offer whose
    current pointer chain already passes through the receiver.
    """
    leak_set = {graph.index_of(asn) for asn in policy.leakers if asn in graph}

    def selection_key(i: int) -> Tuple[int, int, int]:
        via = next_hop[i]
        via_asn = graph.asn_at(via) if via >= 0 else -1
        return (route_class[i], dist[i], via_asn)

    def chain_contains(start: int, target: int) -> bool:
        i = start
        while i != -1:
            if i == target:
                return True
            i = next_hop[i]
        return False

    worklist: Set[int] = {i for i in leak_set if dist[i] != _UNREACHED}
    rounds = 0
    while worklist and rounds < _MAX_LEAK_ROUNDS:
        rounds += 1
        # Collect the best offer each neighbor receives this round, from
        # the pre-round state, exporters visited in deterministic order.
        offers: Dict[int, Tuple[Tuple[int, int, int], int]] = {}
        for node in sorted(worklist, key=graph.asn_at):
            if dist[node] == _UNREACHED or dist[node] + 1 >= _UNREACHED:
                continue
            cls = route_class[node]
            leaking = node in leak_set
            targets: List[Tuple[int, int]] = []
            if leaking or cls in (_ORIGIN, _CUSTOMER):
                for provider in graph.providers[node]:
                    targets.append((provider, _CUSTOMER))
                for peer in graph.peers[node]:
                    targets.append((peer, _PEER))
            for customer in graph.customers[node]:
                targets.append((customer, _PROVIDER))
            offered = (dist[node] + 1, graph.asn_at(node))
            for neighbor, neighbor_class in targets:
                if edge_down(node, neighbor):
                    continue
                key = (neighbor_class, offered[0], offered[1])
                best = offers.get(neighbor)
                if best is None or key < best[0]:
                    offers[neighbor] = (key, node)

        # Apply strictly-improving offers sequentially (sorted by receiver
        # ASN) so mid-round loop checks always see consistent pointers.
        improved: Set[int] = set()
        for neighbor in sorted(offers, key=graph.asn_at):
            key, via = offers[neighbor]
            if key >= selection_key(neighbor):
                continue
            if chain_contains(via, neighbor):
                continue
            route_class[neighbor] = key[0]
            dist[neighbor] = key[1]
            next_hop[neighbor] = via
            improved.add(neighbor)
        worklist = improved


class PolicyRoutingCache:
    """Lazy per-origin cache of policy routing trees over a fixed graph.

    Drop-in replacement for :class:`repro.net.bgp.RoutingTreeCache` when a
    collector routes under a non-trivial :class:`RoutingPolicy`.
    """

    def __init__(self, graph, policy: RoutingPolicy) -> None:
        self._graph = graph
        self._policy = policy
        self._trees: Dict[int, RoutingTree] = {}
        self._kernel = None

    @property
    def policy(self) -> RoutingPolicy:
        return self._policy

    def tree(self, origin: int) -> RoutingTree:
        tree = self._trees.get(origin)
        if tree is None:
            if self._kernel is None:
                from repro.net.propagation import PropagationKernel

                self._kernel = PropagationKernel(self._graph, self._policy)
            tree = self._kernel.propagate(origin)
            self._trees[origin] = tree
        return tree

    def __len__(self) -> int:
        return len(self._trees)
