"""BGP monitors (vantage points) and route collection.

The paper's CTI metric consumes AS paths observed by RouteViews/RIS monitors,
where each monitor is an operational border router inside a host AS.  Here a
:class:`Monitor` is placed inside an AS of the simulated topology, and the
:class:`RouteCollector` reconstructs each monitor's preferred path to any
origin from the Gao-Rexford routing trees.

Monitor weighting follows Appendix G: a monitor's weight is the inverse of
the number of monitors hosted by its own AS, so over-instrumented ASes do not
dominate the metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.net.bgp import RoutingTreeCache
from repro.net.routing import PolicyRoutingCache, RoutingPolicy
from repro.net.topology import ASGraph

__all__ = ["Monitor", "MonitorSet", "RouteCollector"]


@dataclass(frozen=True)
class Monitor:
    """A BGP vantage point hosted inside ``host_asn``."""

    monitor_id: str
    host_asn: int


class MonitorSet:
    """An ordered collection of monitors with Appendix-G weights."""

    def __init__(self, monitors: Iterable[Monitor]) -> None:
        self._monitors: List[Monitor] = list(monitors)
        counts: Dict[int, int] = {}
        for monitor in self._monitors:
            counts[monitor.host_asn] = counts.get(monitor.host_asn, 0) + 1
        self._weights = {
            monitor.monitor_id: 1.0 / counts[monitor.host_asn]
            for monitor in self._monitors
        }
        self._normalized: Optional[Tuple[Tuple[Monitor, float], ...]] = None

    def __len__(self) -> int:
        return len(self._monitors)

    def __iter__(self) -> Iterator[Monitor]:
        return iter(self._monitors)

    def weight(self, monitor: Monitor) -> float:
        """Appendix-G weight w(m) = 1 / (#monitors in m's AS)."""
        return self._weights[monitor.monitor_id]

    def normalized_weights(self) -> Tuple[Tuple[Monitor, float], ...]:
        """``(monitor, w(m)/|M|)`` pairs in monitor order.

        This is the per-monitor factor of the CTI formula; computing it here
        (once per monitor set) keeps the serial scoring loop and the
        parallel per-origin workers on the exact same float values.
        """
        if self._normalized is None:
            count = len(self._monitors)
            self._normalized = tuple(
                (monitor, self.weight(monitor) / count) for monitor in self._monitors
            )
        return self._normalized

    @property
    def host_asns(self) -> List[int]:
        """Host ASNs in monitor order (duplicates possible)."""
        return [m.host_asn for m in self._monitors]

    @classmethod
    def place(
        cls,
        graph: ASGraph,
        count: int,
        rng,
        bias_to_degree: bool = True,
    ) -> "MonitorSet":
        """Place ``count`` monitors in the topology.

        Real route collectors are disproportionately hosted by large,
        well-connected networks; with ``bias_to_degree`` the sampling weight
        of each AS is its neighbor degree.  A small fraction of ASes host
        two monitors, exercising the 1/|monitors-in-AS| weighting.
        """
        asns = graph.asns
        if not asns:
            raise TopologyError("cannot place monitors in an empty graph")
        if bias_to_degree:
            weights = [graph.degree(asn) + 1 for asn in asns]
        else:
            weights = [1] * len(asns)
        hosts = rng.choices(asns, weights=weights, k=count)
        monitors = [
            Monitor(monitor_id=f"mon{i:03d}", host_asn=host)
            for i, host in enumerate(hosts)
        ]
        return cls(monitors)


class RouteCollector:
    """Reconstructs monitor-observed AS paths from routing trees.

    Mirrors a RouteViews/RIS collector: for each (monitor, origin) pair it
    reports the AS path the monitor's host AS prefers toward the origin.
    Routing trees are computed lazily and cached per origin.

    With ``policy=None`` paths come from the static Gao-Rexford trees of
    :mod:`repro.net.bgp` (the reference oracle).  Passing a
    :class:`~repro.net.routing.RoutingPolicy` — even a neutral one —
    switches to the policy engine; a neutral policy yields byte-identical
    paths, which is what the equivalence suite pins down.
    """

    def __init__(
        self,
        graph: ASGraph,
        monitors: MonitorSet,
        policy: Optional[RoutingPolicy] = None,
    ) -> None:
        self._graph = graph
        self.monitors = monitors
        self._policy = policy
        self._cache = self._fresh_cache()

    def _fresh_cache(self):
        if self._policy is None:
            return RoutingTreeCache(self._graph)
        return PolicyRoutingCache(self._graph, self._policy)

    @property
    def policy(self) -> Optional[RoutingPolicy]:
        """The routing policy in force (None = static oracle trees)."""
        return self._policy

    def __getstate__(self) -> dict:
        """Pickle only the graph, monitors and policy, never the trees.

        Process-pool workers receive a collector once per worker; shipping
        an already-warm tree cache would bloat that transfer with data the
        worker is about to recompute for *its* origins anyway.
        """
        return {
            "graph": self._graph,
            "monitors": self.monitors,
            "policy": self._policy,
        }

    def __setstate__(self, state: dict) -> None:
        self._graph = state["graph"]
        self.monitors = state["monitors"]
        self._policy = state.get("policy")
        self._cache = self._fresh_cache()

    # -- zero-copy shipping (repro.parallel.shm protocol) -------------------
    def __shm_export__(self):
        """Flatten to CSR buffers + a tiny monitor meta dict.

        The graph dominates a collector's pickle; exporting it as flat
        arrays lets every process worker attach to one shared copy.  The
        monitor list is a few hundred (id, asn) pairs and rides in meta.
        """
        from repro.net.flatgraph import flatten_graph

        meta = {
            "monitors": tuple((m.monitor_id, m.host_asn) for m in self.monitors),
            "policy": (None if self._policy is None else self._policy.as_dict()),
        }
        _, buffers = flatten_graph(self._graph).__shm_export__()
        return meta, buffers

    @classmethod
    def __shm_rebuild__(cls, meta, views) -> "RouteCollector":
        from repro.net.flatgraph import GraphArrays

        graph = GraphArrays(views).view()
        monitors = MonitorSet(
            Monitor(monitor_id=mid, host_asn=host) for mid, host in meta["monitors"]
        )
        policy_data = meta.get("policy")
        policy = None if policy_data is None else RoutingPolicy.from_dict(policy_data)
        return cls(graph, monitors, policy=policy)

    def path(self, monitor: Monitor, origin: int) -> Optional[Tuple[int, ...]]:
        """AS path from the monitor's host AS to ``origin`` (inclusive).

        Returns None when the host AS has no route.  When the monitor sits
        inside the origin AS itself, the path is the single-element tuple
        ``(origin,)``.
        """
        tree = self._cache.tree(origin)
        return tree.path_from(monitor.host_asn)

    def paths_to(self, origin: int) -> Dict[str, Tuple[int, ...]]:
        """Paths from every monitor (by monitor_id) that can reach ``origin``."""
        tree = self._cache.tree(origin)
        result: Dict[str, Tuple[int, ...]] = {}
        for monitor in self.monitors:
            path = tree.path_from(monitor.host_asn)
            if path is not None:
                result[monitor.monitor_id] = path
        return result

    def trees_computed(self) -> int:
        """Number of routing trees materialized so far (for diagnostics)."""
        return len(self._cache)

    def reset_cache(self) -> None:
        """Drop every materialized routing tree.

        Cold-recompute baselines (``repro maintain --cold``) call this
        between snapshots so the collector re-propagates from scratch,
        as a fresh process would — otherwise trees warmed by the previous
        snapshot would silently grant the cold path the very reuse it is
        supposed to measure the absence of.
        """
        self._cache = self._fresh_cache()
