"""AS business-relationship inference from observed BGP paths.

CAIDA's ASRank (which the paper consumes for customer cones and Table 5)
does not know the true c2p/p2p relationships — it *infers* them from
collector-observed AS paths with a Gao-style algorithm.  This module
implements that inference over the simulation's monitor-observed paths, so
the toolchain can optionally run end-to-end on inferred relationships
instead of reading the generator's ground truth.

The algorithm is the classic degree-anchored heuristic:

1. compute each AS's observed node degree;
2. for every observed path, locate the "top provider" (the highest-degree
   AS on the path); every edge before it is inferred customer->provider,
   every edge after it provider->customer (votes are accumulated across
   paths);
3. edges whose two directions receive balanced votes between two
   high-degree ASes become peer-to-peer.

It recovers the bulk of the true relationships on valley-free paths; the
residual confusion (peer vs provider at the top of paths) matches the
error modes reported for the real inference pipelines.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.net.topology import ASGraph, Relationship

__all__ = ["InferredRelationships", "infer_relationships"]


@dataclass
class InferredRelationships:
    """The inference result: typed edges + lookup and scoring helpers."""

    c2p: FrozenSet[Tuple[int, int]]        # (customer, provider)
    p2p: FrozenSet[Tuple[int, int]]        # (low ASN, high ASN)
    degrees: Dict[int, int]

    def relationship(self, asn_a: int, asn_b: int) -> Optional[Relationship]:
        """Relationship of ``asn_b`` from ``asn_a``'s point of view."""
        if (asn_a, asn_b) in self.c2p:
            return Relationship.PROVIDER
        if (asn_b, asn_a) in self.c2p:
            return Relationship.CUSTOMER
        key = (min(asn_a, asn_b), max(asn_a, asn_b))
        if key in self.p2p:
            return Relationship.PEER
        return None

    def customer_cone_size(self, asn: int) -> int:
        """Cone size over the *inferred* customer edges."""
        children: Dict[int, List[int]] = defaultdict(list)
        for customer, provider in self.c2p:
            children[provider].append(customer)
        seen = {asn}
        stack = [asn]
        while stack:
            node = stack.pop()
            for child in children.get(node, ()):  # inferred customers
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return len(seen)

    def edge_count(self) -> int:
        return len(self.c2p) + len(self.p2p)

    def agreement_with(self, graph: ASGraph) -> float:
        """Fraction of inferred edges whose type matches the true graph.

        Edges absent from the true graph (shouldn't happen when the paths
        came from that graph) count as disagreements.
        """
        total = correct = 0
        for customer, provider in self.c2p:
            total += 1
            if graph.relationship(customer, provider) is Relationship.PROVIDER:
                correct += 1
        for a, b in self.p2p:
            total += 1
            if graph.relationship(a, b) is Relationship.PEER:
                correct += 1
        return correct / total if total else 0.0


def infer_relationships(
    paths: Iterable[Tuple[int, ...]],
    peer_vote_ratio: float = 0.35,
) -> InferredRelationships:
    """Infer AS relationships from AS paths (monitor -> origin order).

    ``peer_vote_ratio``: an edge becomes p2p when its minority vote
    direction receives at least this share of its total votes *and* it sits
    at the top of paths between similar-degree ASes.
    """
    path_list = [tuple(p) for p in paths if len(p) >= 2]

    # Pass 1: observed degrees.
    degrees: Dict[int, int] = defaultdict(int)
    neighbors: Dict[int, Set[int]] = defaultdict(set)
    for path in path_list:
        for a, b in zip(path, path[1:]):
            if b not in neighbors[a]:
                neighbors[a].add(b)
                neighbors[b].add(a)
    for asn, adjacent in neighbors.items():
        degrees[asn] = len(adjacent)

    # Pass 2: vote on edge directions.  Paths are recorded monitor-first,
    # origin-last; traffic flows origin->monitor, so read them reversed:
    # uphill (customer->provider) until the top provider, downhill after.
    votes_c2p: Dict[Tuple[int, int], int] = defaultdict(int)
    top_edge_flags: Dict[Tuple[int, int], int] = defaultdict(int)
    for path in path_list:
        uphill = tuple(reversed(path))  # origin ... monitor host
        top_index = max(range(len(uphill)), key=lambda i: (degrees[uphill[i]], -i))
        for i, (a, b) in enumerate(zip(uphill, uphill[1:])):
            if i < top_index:
                votes_c2p[(a, b)] += 1      # a is b's customer
            else:
                votes_c2p[(b, a)] += 1      # b is a's customer
            # Edges adjacent to the top AS are peering candidates.
            if i in (top_index - 1, top_index):
                key = (min(a, b), max(a, b))
                top_edge_flags[key] += 1

    # Pass 3: classify.
    c2p: Set[Tuple[int, int]] = set()
    p2p: Set[Tuple[int, int]] = set()
    processed: Set[Tuple[int, int]] = set()
    for (a, b), forward in votes_c2p.items():
        key = (min(a, b), max(a, b))
        if key in processed:
            continue
        processed.add(key)
        backward = votes_c2p.get((b, a), 0)
        total = forward + backward
        minority = min(forward, backward)
        near_top = top_edge_flags.get(key, 0) > 0
        similar_degree = (
            min(degrees[a], degrees[b]) / max(degrees[a], degrees[b]) > 0.25
            if max(degrees[a], degrees[b])
            else False
        )
        if (
            total > 0
            and minority / total >= peer_vote_ratio
            and near_top
            and similar_degree
        ):
            p2p.add(key)
        elif forward >= backward:
            c2p.add((a, b))
        else:
            c2p.add((b, a))

    return InferredRelationships(
        c2p=frozenset(c2p),
        p2p=frozenset(p2p),
        degrees=dict(degrees),
    )
