"""Benchmark-trajectory tooling.

The repo commits its perf history as append-only ``BENCH_*.json`` files
(JSON lines; see ``benchmarks/_record.py``).  This package reads those
trajectories back: :func:`~repro.bench.diff.diff_trajectories` compares
the last two comparable records of every file and flags regressions in
the tracked stages, which is what the ``repro bench-diff`` subcommand
(and the CI bench-smoke gate) runs.
"""

from repro.bench.diff import (
    DEFAULT_THRESHOLD,
    MetricDelta,
    diff_trajectories,
    format_report,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "diff_trajectories",
    "format_report",
]
