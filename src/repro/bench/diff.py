"""Compare the last two records of each committed bench trajectory.

Each ``BENCH_*.json`` file is an append-only sequence of JSON-line
records.  A record is *comparable* to another when both name the same
``benchmark`` and carry an identical ``context`` dict (scale, jobs,
client count, ...) — so a reduced-scale CI record never diffs against a
full-scale workstation baseline, and the gate only fires on like-for-like
pairs produced on the same configuration.

Within a comparable pair, the ``tracked`` metrics are gated: a metric
regresses when it moves against its direction by more than the threshold
(default 20 %).  Direction is inferred from the key — ``qps``,
``reused_fraction``, ``*_per_s`` and ``*_x`` (speedup ratios) are
higher-is-better, everything else (wall times in ``_s`` / ``_ms``)
lower-is-better.  Records predating the ``tracked`` convention fall back
to gating their flat ``qps``/``p50_ms``/``p95_ms`` keys.

``--trend`` widens the lens from the last pair to the whole trajectory:
first/last/best per metric plus a sparkline of every recorded point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "MetricTrend",
    "diff_trajectories",
    "format_report",
    "format_trend_report",
    "trend_trajectories",
]

DEFAULT_THRESHOLD = 0.20

_HIGHER_BETTER = {"qps", "reused_fraction"}
#: Keys gated on records that predate the ``tracked`` convention.
_LEGACY_TRACKED = ("qps", "p50_ms", "p95_ms")

#: Eight-level sparkline ramp for --trend series.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class MetricDelta:
    """One tracked metric compared across the last comparable pair."""

    trajectory: str
    benchmark: str
    metric: str
    old: float
    new: float
    change: float  # signed fraction: (new - old) / old
    regressed: bool


def _higher_is_better(metric: str) -> bool:
    return (
        metric in _HIGHER_BETTER or metric.endswith("_per_s") or metric.endswith("_x")
    )


def _tracked_metrics(record: dict) -> Dict[str, float]:
    tracked = record.get("tracked")
    if isinstance(tracked, dict) and tracked:
        return {
            key: float(value)
            for key, value in tracked.items()
            if isinstance(value, (int, float))
        }
    return {
        key: float(record[key])
        for key in _LEGACY_TRACKED
        if isinstance(record.get(key), (int, float))
    }


def _pair_key(record: dict) -> Tuple[str, str]:
    context = record.get("context")
    context_key = (
        json.dumps(context, sort_keys=True) if isinstance(context, dict) else "{}"
    )
    return str(record.get("benchmark", "?")), context_key


def _parse_lines(path: Path) -> List[dict]:
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn append must not wedge the gate
        if isinstance(record, dict):
            records.append(record)
    return records


def diff_file(path: Path, threshold: float = DEFAULT_THRESHOLD) -> List[MetricDelta]:
    """Deltas for the last comparable record pair of each benchmark."""
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for record in _parse_lines(path):
        groups.setdefault(_pair_key(record), []).append(record)
    deltas: List[MetricDelta] = []
    for (benchmark, _), records in sorted(groups.items()):
        if len(records) < 2:
            continue
        old_record, new_record = records[-2], records[-1]
        old_metrics = _tracked_metrics(old_record)
        new_metrics = _tracked_metrics(new_record)
        for metric in old_metrics:
            if metric not in new_metrics:
                continue
            old, new = old_metrics[metric], new_metrics[metric]
            if old == 0:
                continue
            change = (new - old) / old
            if _higher_is_better(metric):
                regressed = change < -threshold
            else:
                regressed = change > threshold
            deltas.append(
                MetricDelta(
                    trajectory=path.name,
                    benchmark=benchmark,
                    metric=metric,
                    old=old,
                    new=new,
                    change=change,
                    regressed=regressed,
                )
            )
    return deltas


def diff_trajectories(
    root: Path,
    threshold: float = DEFAULT_THRESHOLD,
    pattern: str = "BENCH_*.json",
) -> List[MetricDelta]:
    """Deltas across every trajectory file under ``root`` (sorted)."""
    deltas: List[MetricDelta] = []
    for path in sorted(Path(root).glob(pattern)):
        deltas.extend(diff_file(path, threshold=threshold))
    return deltas


def format_report(
    deltas: List[MetricDelta], threshold: float = DEFAULT_THRESHOLD
) -> str:
    """Human-readable report; one line per compared metric."""
    if not deltas:
        return (
            "bench-diff: no comparable record pairs found "
            "(need two records with matching benchmark and context)"
        )
    lines = []
    regressions = 0
    for delta in deltas:
        if delta.regressed:
            regressions += 1
            verdict = "REGRESSED"
        else:
            verdict = "ok"
        lines.append(
            f"{delta.trajectory}  {delta.benchmark}  {delta.metric}: "
            f"{delta.old:g} -> {delta.new:g} "
            f"({delta.change:+.1%})  {verdict}"
        )
    lines.append(
        f"bench-diff: {len(deltas)} metric(s) compared, "
        f"{regressions} regression(s) beyond {threshold:.0%}"
    )
    return "\n".join(lines)


def run_diff(
    root: Path,
    threshold: float = DEFAULT_THRESHOLD,
    pattern: Optional[str] = None,
) -> Tuple[int, str]:
    """The bench-diff gate: ``(exit_code, report)``; nonzero on regression."""
    deltas = diff_trajectories(
        root, threshold=threshold, pattern=pattern or "BENCH_*.json"
    )
    report = format_report(deltas, threshold=threshold)
    exit_code = 1 if any(d.regressed for d in deltas) else 0
    return exit_code, report


# -- full-trajectory trends (--trend) ----------------------------------------

@dataclass(frozen=True)
class MetricTrend:
    """One tracked metric's full recorded trajectory."""

    trajectory: str
    benchmark: str
    metric: str
    values: Tuple[float, ...]
    #: The comparable group's context as a canonical JSON string ("{}" when
    #: the records carry none) — series are never mixed across contexts.
    context: str = "{}"

    @property
    def first(self) -> float:
        return self.values[0]

    @property
    def last(self) -> float:
        return self.values[-1]

    @property
    def best(self) -> float:
        if _higher_is_better(self.metric):
            return max(self.values)
        return min(self.values)

    @property
    def worst(self) -> float:
        if _higher_is_better(self.metric):
            return min(self.values)
        return max(self.values)

    @property
    def slope(self) -> float:
        """Least-squares slope in metric units per recorded point.

        The x axis is the record index (the trajectory is append-only, so
        index order IS time order); a negative slope on a wall-time metric
        means the benchmark is getting faster across the whole history,
        which single last-two deltas cannot see.
        """
        n = len(self.values)
        if n < 2:
            return 0.0
        mean_x = (n - 1) / 2
        mean_y = sum(self.values) / n
        num = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(self.values))
        den = sum((i - mean_x) ** 2 for i in range(n))
        return num / den

    @property
    def overall_change(self) -> float:
        """Signed fraction from the first record to the last (0 when the
        first value is zero — no base to compare against)."""
        if self.first == 0:
            return 0.0
        return (self.last - self.first) / self.first

    def sparkline(self) -> str:
        """The series as an eight-level bar string, min-max normalized."""
        lo, hi = min(self.values), max(self.values)
        if hi == lo:
            return _SPARK_CHARS[3] * len(self.values)
        top = len(_SPARK_CHARS) - 1
        return "".join(
            _SPARK_CHARS[round((v - lo) / (hi - lo) * top)] for v in self.values
        )


def trend_file(path: Path) -> List[MetricTrend]:
    """Every tracked metric's full series per comparable group in a file."""
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for record in _parse_lines(path):
        groups.setdefault(_pair_key(record), []).append(record)
    trends: List[MetricTrend] = []
    for (benchmark, context_key), records in sorted(groups.items()):
        series: Dict[str, List[float]] = {}
        for record in records:
            for metric, value in _tracked_metrics(record).items():
                series.setdefault(metric, []).append(value)
        for metric in sorted(series):
            values = series[metric]
            if len(values) < 2:
                continue
            trends.append(
                MetricTrend(
                    trajectory=path.name,
                    benchmark=benchmark,
                    metric=metric,
                    values=tuple(values),
                    context=context_key,
                )
            )
    return trends


def trend_trajectories(root: Path, pattern: str = "BENCH_*.json") -> List[MetricTrend]:
    """Trends across every trajectory file under ``root`` (sorted)."""
    trends: List[MetricTrend] = []
    for path in sorted(Path(root).glob(pattern)):
        trends.extend(trend_file(path))
    return trends


def format_trend_report(trends: List[MetricTrend]) -> str:
    """Human-readable multi-point report; one line per metric series."""
    if not trends:
        return (
            "bench-diff --trend: no multi-point series found "
            "(need two or more records with matching benchmark and context)"
        )
    lines = []
    for trend in trends:
        direction = "↑" if _higher_is_better(trend.metric) else "↓"
        context = "" if trend.context == "{}" else f"  {trend.context}"
        lines.append(
            f"{trend.trajectory}  {trend.benchmark}{context}  {trend.metric}"
            f"[{direction}]: "
            f"first {trend.first:g}  last {trend.last:g}  "
            f"best {trend.best:g}  worst {trend.worst:g}  "
            f"slope {trend.slope:+g}/pt over {len(trend.values)} pts  "
            f"({trend.overall_change:+.1%})  "
            f"{trend.sparkline()}"
        )
    lines.append(
        f"bench-diff --trend: {len(trends)} series over "
        f"{len({t.trajectory for t in trends})} trajectory file(s)"
    )
    return "\n".join(lines)


def run_trend(root: Path, pattern: Optional[str] = None) -> Tuple[int, str]:
    """The --trend view: ``(exit_code, report)``; informational, exit 0."""
    trends = trend_trajectories(root, pattern=pattern or "BENCH_*.json")
    return 0, format_trend_report(trends)
