"""Country-level IP geolocation (the NetAcuity stand-in).

The real service maps individual addresses to countries with country-level
accuracy the paper cites at 74-98 %.  Here each announced prefix's addresses
are distributed over countries: a configurable ``accuracy`` fraction goes to
the true country, the remainder leaks to a small set of plausible wrong
countries (deterministically chosen per prefix, so repeated queries agree).

The candidate source built on top (``<origin ASN, country, #addresses>``
triplets, §4.1) therefore inherits realistic threshold perturbation: an AS
just above the paper's 5 % rule in truth can fall below it in the
geolocated view, and vice versa.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.config import SourceNoiseConfig
from repro.errors import SourceError
from repro.net.prefix import Prefix
from repro.rng import derive_seed
from repro.sources.prefix2as import Prefix2ASTable

__all__ = ["GeolocationService"]


class GeolocationService:
    """Per-prefix country attribution with bounded inaccuracy."""

    def __init__(
        self,
        true_country_of_asn: Dict[int, str],
        all_ccs: List[str],
        noise: SourceNoiseConfig,
        seed: int,
    ) -> None:
        if not 0.0 <= noise.geolocation_accuracy <= 1.0:
            raise SourceError("geolocation accuracy out of range")
        self._true_cc = dict(true_country_of_asn)
        self._all_ccs = sorted(all_ccs)
        self._noise = noise
        self._seed = seed

    @classmethod
    def from_world(
        cls, world, noise: SourceNoiseConfig | None = None
    ) -> "GeolocationService":
        noise = noise or SourceNoiseConfig()
        true_cc = {asn: rec.cc for asn, rec in world.asn_records.items()}
        ccs = [c.cc for c in world.countries]
        return cls(true_cc, ccs, noise, derive_seed(world.config.seed, "geolocation"))

    def locate_prefix(self, prefix: Prefix, origin: int) -> Dict[str, int]:
        """Country -> address count attribution for one announced prefix.

        Deterministic per (prefix, origin): the same query always returns the
        same split, like a static geolocation database snapshot.
        """
        true_cc = self._true_cc.get(origin)
        if true_cc is None:
            raise SourceError(f"unknown origin AS{origin}")
        total = prefix.num_addresses
        rng = random.Random(
            derive_seed(self._seed, f"{prefix.base}/{prefix.length}:{origin}")
        )
        correct = round(total * self._noise.geolocation_accuracy)
        # Small prefixes are geolocated atomically (a /24 rarely splits).
        if prefix.length >= 23 and rng.random() < self._noise.geolocation_accuracy:
            return {true_cc: total}
        leak = total - correct
        if leak <= 0:
            return {true_cc: total}
        # Leak to 1-3 wrong countries (infrastructure abroad, stale blocks);
        # whatever rounding leaves over goes back to the true country so the
        # split always conserves the prefix's address count exactly.
        wrong_count = rng.randint(1, 3)
        wrong_ccs = rng.sample(
            [cc for cc in self._all_ccs if cc != true_cc], k=wrong_count
        )
        cuts = sorted(rng.random() for _ in range(wrong_count - 1))
        bounds = [0.0] + cuts + [1.0]
        result: Dict[str, int] = {}
        assigned = 0
        for cc, lo, hi in zip(wrong_ccs, bounds, bounds[1:]):
            amount = min(round(leak * (hi - lo)), leak - assigned)
            if amount > 0:
                result[cc] = result.get(cc, 0) + amount
                assigned += amount
        result[true_cc] = total - assigned
        return result

    def country_asn_addresses(
        self, table: Prefix2ASTable
    ) -> Dict[Tuple[int, str], int]:
        """The paper's §4.1 triplets: (origin ASN, country) -> #addresses.

        Address counts are de-duplicated with the more-specific rule before
        geolocation, matching how CAIDA's prefix2as list is consumed.  The
        de-duplication reads the table's flat count column (the linear
        sweep; same values as the trie's batch ``a(p, C)`` map) — the
        column is in table order, so zipping it with the entry walk visits
        the same (prefix, usable) pairs the dict lookups produced.
        """
        flat = table.flat_counts()
        result: Dict[Tuple[int, str], int] = {}
        for (prefix, origin), usable in zip(table, flat.uncovered):
            if usable == 0:
                continue
            split = self.locate_prefix(prefix, origin)
            scale = usable / prefix.num_addresses
            for cc, count in split.items():
                scaled = round(count * scale)
                if scaled:
                    key = (origin, cc)
                    result[key] = result.get(key, 0) + scaled
        return result

    def country_totals(self, table: Prefix2ASTable) -> Dict[str, int]:
        """Total geolocated addresses per country."""
        totals: Dict[str, int] = {}
        for (_, cc), count in self.country_asn_addresses(table).items():
            totals[cc] = totals.get(cc, 0) + count
        return totals
