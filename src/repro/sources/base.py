"""Common definitions for the derived data sources."""

from __future__ import annotations

import enum
from typing import Dict

__all__ = ["InputSource", "SOURCE_CODES"]


class InputSource(enum.Enum):
    """The five candidate input sources of the paper (Figure 2, §6).

    The one-letter codes follow the paper's own abbreviation convention:
    G = Country-level AS geolocation, E = APNIC eyeballs dataset,
    C = Country Transit Influence, W = Wikipedia & Freedom House, O = Orbis.
    """

    GEOLOCATION = "G"
    EYEBALLS = "E"
    CTI = "C"
    WIKIPEDIA_FH = "W"
    ORBIS = "O"

    @property
    def is_technical(self) -> bool:
        """True for the computer-networking (AS-list) sources (§4.1)."""
        return self in (InputSource.GEOLOCATION, InputSource.EYEBALLS, InputSource.CTI)


#: Code-to-source lookup, e.g. ``SOURCE_CODES["G"]``.
SOURCE_CODES: Dict[str, InputSource] = {s.value: s for s in InputSource}
