"""RIR WHOIS organization records.

WHOIS is the compulsory registration database; its failure modes drive much
of the paper's §4.2 mapping difficulty:

* ``org_name`` is a *legal* name that may be stale (pre-rebrand) or an
  unrelated local registrant (foreign subsidiaries);
* sibling ASNs of one operator can appear under entirely different names;
* the contact e-mail domain is often the only thread back to the operator's
  actual web presence (the paper resorts to searching those domains).

Records are derived from each AS's registered name in the world, with an
extra staleness pass on top.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed
from repro.text.names import NameForge
from repro.text.normalize import normalize_name

__all__ = ["WhoisRecord", "WhoisDatabase"]


@dataclass(frozen=True)
class WhoisRecord:
    """One WHOIS entry (the fields common across all five RIRs, §4.2)."""

    asn: int
    as_name: str       # short AS handle, e.g. "ZAMTEL-AS"
    org_name: str      # registrant organization legal name
    org_id: str        # registry organization handle
    cc: str
    rir: str
    email_domain: str  # domain of the registered point of contact


def _org_handle(org_name: str, rir: str, registrant: str = "") -> str:
    """Stable registry-style organization handle.

    Handles are unique per *registrant account*, not per name: two unrelated
    companies that happen to register identical legal names still get
    distinct handles (as in real RIR databases), while the same registrant
    reusing one name across ASNs shares a handle.
    """
    digest = hashlib.blake2b(
        f"{normalize_name(org_name)}:{rir}:{registrant}".encode("utf-8"),
        digest_size=3,
    ).hexdigest().upper()
    return f"ORG-{digest}-{rir}"


def _as_handle(org_name: str, cc: str, rng: random.Random) -> str:
    tokens = [t for t in normalize_name(org_name).split() if t]
    if not tokens:
        return f"AS-{cc}"
    if len(tokens) >= 2 and rng.random() < 0.5:
        stem = "".join(t[0] for t in tokens).upper()
    else:
        stem = tokens[0][:8].upper()
    suffix = rng.choice(["-AS", f"-{cc}", "-NET", ""])
    return f"{stem}{suffix}"


class WhoisDatabase:
    """Queryable WHOIS snapshot for all delegated ASNs."""

    def __init__(self, records: List[WhoisRecord]) -> None:
        self._records: Dict[int, WhoisRecord] = {r.asn: r for r in records}
        self._by_org: Dict[str, List[int]] = {}
        for record in records:
            self._by_org.setdefault(record.org_id, []).append(record.asn)

    @classmethod
    def from_world(
        cls, world, noise: Optional[SourceNoiseConfig] = None
    ) -> "WhoisDatabase":
        noise = noise or SourceNoiseConfig()
        rng = random.Random(derive_seed(world.config.seed, "whois"))
        forge = NameForge(random.Random(derive_seed(world.config.seed, "whois-names")))
        records: List[WhoisRecord] = []
        for asn, rec in sorted(world.asn_records.items()):
            operator = world.operator(rec.operator_id)
            org_name = rec.registered_name
            if rng.random() < noise.whois_stale_prob:
                org_name = forge.stale_variant(org_name)
            # Contact domain: usually the operator's real web domain — the
            # thread the paper follows when names fail — but sometimes a
            # registrar or generic mailbox.
            if operator.website and rng.random() < 0.8:
                email_domain = operator.website
            else:
                stem = normalize_name(org_name).split()
                email_domain = (stem[0] if stem else "noc") + "-mail.example"
            records.append(
                WhoisRecord(
                    asn=asn,
                    as_name=_as_handle(org_name, rec.cc, rng),
                    org_name=org_name,
                    org_id=_org_handle(org_name, rec.rir, rec.operator_id),
                    cc=rec.cc,
                    rir=rec.rir,
                    email_domain=email_domain,
                )
            )
        return cls(records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def __iter__(self) -> Iterator[WhoisRecord]:
        return iter(self._records.values())

    def lookup(self, asn: int) -> Optional[WhoisRecord]:
        """The WHOIS record for ``asn`` (None if not delegated)."""
        return self._records.get(asn)

    def asns_of_org(self, org_id: str) -> List[int]:
        """All ASNs registered under one organization handle."""
        return sorted(self._by_org.get(org_id, []))

    def org_ids(self) -> List[str]:
        return sorted(self._by_org)

    def search_name(self, fragment: str) -> List[WhoisRecord]:
        """Case-insensitive substring search over org names."""
        needle = normalize_name(fragment)
        if not needle:
            return []
        return [
            record
            for record in self._records.values()
            if needle in normalize_name(record.org_name)
        ]
