"""ASRank-style customer cones with a synthetic decade of history.

Current customer-cone sizes come straight from the world's topology (the
real ASRank computes them from inferred relationships; ours are exact by
construction).  The 2010-2020 history behind Figure 5 is synthesized from
per-AS growth profiles: submarine-cable operators founded to fix a country's
international connectivity grow explosively (the Angola Cables / BSCCL
pattern), ordinary transit networks grow modestly, and everything else is
roughly flat.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import SourceError
from repro.rng import derive_seed
from repro.world.entities import OperatorRole

__all__ = ["AsRankDataset", "linear_trend"]

#: History timeline: (year, month) from January 2010 to June 2020, quarterly.
HISTORY_EPOCHS: Tuple[Tuple[int, int], ...] = tuple(
    (year, month)
    for year in range(2010, 2021)
    for month in (1, 4, 7, 10)
    if (year, month) <= (2020, 6)
)


def linear_trend(series: Sequence[Tuple[Tuple[int, int], int]]) -> float:
    """Least-squares slope of a cone-size series, in ASes per year."""
    if len(series) < 2:
        return 0.0
    xs = [year + (month - 1) / 12.0 for (year, month), _ in series]
    ys = [float(size) for _, size in series]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator


class AsRankDataset:
    """Customer-cone sizes (current + decade history) per ASN."""

    def __init__(
        self,
        cone_sizes: Mapping[int, int],
        growth_profiles: Dict[int, Tuple[str, int]],
        seed: int,
    ) -> None:
        self._cone_sizes = dict(cone_sizes)
        #: asn -> (profile kind, anchor year); kinds: "cable", "transit", "flat"
        self._profiles = dict(growth_profiles)
        self._seed = seed
        self._history_cache: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}

    @classmethod
    def from_world(cls, world) -> "AsRankDataset":
        graph = world.graph
        # One bottom-up bitset sweep sizes every cone at once; stubs come out
        # as 1 by construction, matching the old explicit special case.  The
        # read-only mapping keeps ASN-table order and is copied by __init__.
        cone_sizes = graph.all_cone_sizes()
        profiles: Dict[int, Tuple[str, int]] = {}
        for asn in graph.asns:
            record = world.asn_records.get(asn)
            if record is None:
                profiles[asn] = ("flat", 2005)
                continue
            operator = world.operator(record.operator_id)
            if record.role is OperatorRole.CABLE:
                profiles[asn] = ("cable", max(2009, operator.founded_year))
            elif record.role in (OperatorRole.TRANSIT, OperatorRole.INCUMBENT):
                profiles[asn] = ("transit", operator.founded_year)
            else:
                profiles[asn] = ("flat", operator.founded_year)
        return cls(cone_sizes, profiles, derive_seed(world.config.seed, "asrank"))

    def __contains__(self, asn: int) -> bool:
        return asn in self._cone_sizes

    def cone_size(self, asn: int) -> int:
        """Current (June 2020) customer-cone size of ``asn``."""
        try:
            return self._cone_sizes[asn]
        except KeyError:
            raise SourceError(f"AS{asn} not in ASRank data") from None

    def top_cones(self, asns: Iterable[int], k: int = 10) -> List[Tuple[int, int]]:
        """The ``k`` largest cones among ``asns`` as (asn, size) pairs."""
        sized = []
        for asn in asns:
            size = self._cone_sizes.get(asn)
            if size is not None:
                sized.append((asn, size))
        sized.sort(key=lambda pair: (-pair[1], pair[0]))
        return sized[:k]

    # -- history ----------------------------------------------------------------
    def cone_history(self, asn: int) -> List[Tuple[Tuple[int, int], int]]:
        """Quarterly cone-size series from 2010-01 to 2020-06."""
        if asn in self._history_cache:
            return self._history_cache[asn]
        final = self.cone_size(asn)
        kind, anchor = self._profiles.get(asn, ("flat", 2005))
        rng = random.Random(derive_seed(self._seed, f"history:{asn}"))
        series: List[Tuple[Tuple[int, int], int]] = []
        for year, month in HISTORY_EPOCHS:
            t = year + (month - 1) / 12.0
            fraction = self._profile_fraction(kind, anchor, t, rng)
            noisy = fraction * (1.0 + rng.uniform(-0.05, 0.05))
            size = max(0, round(final * noisy))
            if t >= anchor:
                size = max(size, 1)
            series.append(((year, month), size))
        # The series must end exactly at the current published value.
        series[-1] = (series[-1][0], final)
        self._history_cache[asn] = series
        return series

    @staticmethod
    def _profile_fraction(kind: str, anchor: int, t: float, rng) -> float:
        if kind == "cable":
            # Logistic ramp: nothing before the cable lands, explosive
            # growth afterwards.
            if t < anchor:
                return 0.0
            return 1.0 / (1.0 + math.exp(-(t - anchor - 4.0) * 0.9))
        if kind == "transit":
            # Mild, roughly linear growth across the decade.
            start_fraction = 0.45
            progress = (t - 2010.0) / 10.5
            return start_fraction + (1.0 - start_fraction) * min(1.0, progress)
        # Flat: stubs and access networks keep their (tiny) cones.
        return 1.0

    def growth_slope(self, asn: int) -> float:
        """Least-squares cone growth (ASes/year) over the decade."""
        return linear_trend(self.cone_history(asn))

    def fastest_growing(
        self, asns: Iterable[int], k: int = 10
    ) -> List[Tuple[int, float]]:
        """The ``k`` ASes with the steepest cone growth (Figure 5 ranking)."""
        slopes = [
            (asn, self.growth_slope(asn)) for asn in asns if asn in self._cone_sizes
        ]
        slopes.sort(key=lambda pair: (-pair[1], pair[0]))
        return slopes[:k]


def _reference_cone_sizes_from_world(world) -> Dict[int, int]:
    """Cone sizes as the pre-kernel ``from_world`` computed them (per-AS
    BFS, stubs special-cased to 1).  Equivalence oracle for tests."""
    graph = world.graph
    cone_sizes: Dict[int, int] = {}
    for asn in graph.asns:
        if graph.is_stub(asn):
            cone_sizes[asn] = 1
        else:
            cone_sizes[asn] = len(graph.customer_cone(asn))
    return cone_sizes
