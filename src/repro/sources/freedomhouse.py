"""Freedom House "Freedom on the Net" style reports.

Freedom House's annual reports cover 65 countries, written by in-country
experts; the paper finds them *reliable* — no false positives among their
state-ownership assessments — though they can miss companies and often omit
market-share information (§7, §9).

The simulated reports therefore: (i) cover a fixed subset of countries
biased toward large and developing ones (where Internet-freedom reporting
concentrates), (ii) list truly state-owned operators with imperfect recall,
and (iii) never fabricate state ownership.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed

__all__ = ["FreedomHouseMention", "FreedomHouseReports"]


@dataclass(frozen=True)
class FreedomHouseMention:
    """One company the report describes as state-owned."""

    company_name: str   # the brand name, as an in-country expert writes it
    cc: str             # country the report covers
    year: int
    quote: str


class FreedomHouseReports:
    """Per-country report index with state-ownership mentions."""

    def __init__(
        self,
        covered_ccs: Set[str],
        mentions: List[FreedomHouseMention],
    ) -> None:
        self._covered = set(covered_ccs)
        self._mentions = list(mentions)
        self._by_cc: Dict[str, List[FreedomHouseMention]] = {}
        for mention in mentions:
            self._by_cc.setdefault(mention.cc, []).append(mention)

    @classmethod
    def from_world(
        cls, world, noise: Optional[SourceNoiseConfig] = None
    ) -> "FreedomHouseReports":
        noise = noise or SourceNoiseConfig()
        rng = random.Random(derive_seed(world.config.seed, "freedomhouse"))
        # Coverage favors populous and developing countries (the project
        # tracks Internet freedom where it is most contested).
        weights = {
            c.cc: (c.pop_class + 1) * (3 - c.dev_tier + 1) for c in world.countries
        }
        ordered = sorted(
            world.countries,
            key=lambda c: (-(weights[c.cc] + rng.random()), c.cc),
        )
        covered = {c.cc for c in ordered[: noise.freedomhouse_country_count]}
        mentions: List[FreedomHouseMention] = []
        for gto in sorted(world.ground_truth(), key=lambda g: g.operator.entity_id):
            operator = gto.operator
            if operator.cc not in covered:
                continue
            recall = noise.freedomhouse_recall
            if operator.role.value in ("transit", "cable"):
                # Reports focus on the providers citizens actually use;
                # wholesale transit firms are rarely named.
                recall *= 0.3
            if rng.random() > recall:
                continue
            owner = "the government"
            if gto.is_foreign_subsidiary:
                owner = f"the government of {gto.controlling_cc}"
            mentions.append(
                FreedomHouseMention(
                    company_name=operator.display_name,
                    cc=operator.cc,
                    year=rng.choice((2018, 2019, 2020)),
                    quote=(
                        f"{operator.display_name}, the state-owned provider "
                        f"controlled by {owner}, dominates key segments of "
                        f"the market."
                    ),
                )
            )
        return cls(covered, mentions)

    @property
    def covered_countries(self) -> Set[str]:
        """Countries with a Freedom on the Net report."""
        return set(self._covered)

    def covers(self, cc: str) -> bool:
        return cc in self._covered

    def mentions_in(self, cc: str) -> List[FreedomHouseMention]:
        """State-ownership mentions in the report for ``cc``."""
        return list(self._by_cc.get(cc, []))

    def all_mentions(self) -> List[FreedomHouseMention]:
        return list(self._mentions)

    def state_owned_company_names(self) -> List[Tuple[str, str]]:
        """(company name, country) pairs reported as state-owned."""
        return [(m.company_name, m.cc) for m in self._mentions]
