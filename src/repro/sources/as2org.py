"""AS2Org-style sibling inference (the CAIDA AS2Org stand-in).

CAIDA's AS2Org clusters ASNs into organizations using WHOIS registration
data.  It is the tool the paper uses in stage 3 to expand confirmed
companies to their sibling ASNs — and the paper also observes its known
failure mode: siblings registered under completely different legal names are
*not* clustered together (§2, §6).

The simulation mirrors that: ASNs of one operator whose WHOIS org names
normalize identically always land in one cluster; divergently-named siblings
join the operator's main cluster only with probability
``1 - as2org_miss_prob`` (the registry data sometimes still links them via
shared contacts), otherwise they form their own singleton organizations.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Set

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed
from repro.sources.whois import WhoisDatabase
from repro.text.normalize import normalize_name

__all__ = ["As2OrgDataset"]


class As2OrgDataset:
    """ASN -> inferred organization clusters."""

    def __init__(
        self,
        org_of_asn: Dict[int, str],
        org_names: Dict[str, str],
        org_ccs: Dict[str, str],
    ) -> None:
        self._org_of_asn = dict(org_of_asn)
        self._org_names = dict(org_names)
        self._org_ccs = dict(org_ccs)
        self._members: Dict[str, Set[int]] = {}
        for asn, org in self._org_of_asn.items():
            self._members.setdefault(org, set()).add(asn)

    @classmethod
    def from_world(
        cls,
        world,
        whois: WhoisDatabase,
        noise: Optional[SourceNoiseConfig] = None,
    ) -> "As2OrgDataset":
        noise = noise or SourceNoiseConfig()
        rng = random.Random(derive_seed(world.config.seed, "as2org"))
        org_of_asn: Dict[int, str] = {}
        org_names: Dict[str, str] = {}
        org_ccs: Dict[str, str] = {}
        for operator_id in sorted(world.operator_asns):
            asns = world.operator_asns[operator_id]
            if not asns:
                continue
            primary = asns[0]
            primary_record = whois.lookup(primary)
            if primary_record is None:
                continue
            main_org = primary_record.org_id
            org_of_asn[primary] = main_org
            org_names.setdefault(main_org, primary_record.org_name)
            org_ccs.setdefault(main_org, primary_record.cc)
            primary_name = normalize_name(primary_record.org_name)
            for sibling in asns[1:]:
                record = whois.lookup(sibling)
                if record is None:
                    continue
                same_name = normalize_name(record.org_name) == primary_name
                if same_name or rng.random() > noise.as2org_miss_prob:
                    org_of_asn[sibling] = main_org
                else:
                    # Missed sibling: its divergent WHOIS name yields a
                    # separate inferred organization.
                    org_of_asn[sibling] = record.org_id
                    org_names.setdefault(record.org_id, record.org_name)
                    org_ccs.setdefault(record.org_id, record.cc)
        return cls(org_of_asn, org_names, org_ccs)

    def __len__(self) -> int:
        return len(self._members)

    def org_of(self, asn: int) -> Optional[str]:
        """Inferred organization id of ``asn``."""
        return self._org_of_asn.get(asn)

    def siblings_of(self, asn: int) -> FrozenSet[int]:
        """All ASNs clustered with ``asn`` (including itself)."""
        org = self._org_of_asn.get(asn)
        if org is None:
            return frozenset({asn})
        return frozenset(self._members[org])

    def members_of(self, org_id: str) -> FrozenSet[int]:
        return frozenset(self._members.get(org_id, set()))

    def org_name(self, org_id: str) -> Optional[str]:
        return self._org_names.get(org_id)

    def org_cc(self, org_id: str) -> Optional[str]:
        return self._org_ccs.get(org_id)

    def org_ids(self) -> List[str]:
        return sorted(self._members)

    def distinct_org_count(self, asns) -> int:
        """Number of distinct inferred organizations among ``asns``."""
        return len({self.org_of(a) or f"unclustered-{a}" for a in asns})
