"""Derived data sources: noisy projections of the ground-truth world.

Each module simulates one of the paper's input or confirmation datasets:

========================  =====================================================
Module                    Stands in for
========================  =====================================================
:mod:`.prefix2as`         CAIDA prefix-to-AS (BGP-routed prefixes -> origins)
:mod:`.geolocation`       Digital Element NetAcuity country-level geolocation
:mod:`.eyeballs`          APNIC per-AS eyeball population estimates
:mod:`.whois`             RIR WHOIS organization records
:mod:`.peeringdb`         PeeringDB self-reported operator records
:mod:`.as2org`            CAIDA AS2Org sibling inference
:mod:`.asrank`            CAIDA ASRank customer cones + decade history
:mod:`.orbis`             Bureau van Dijk's Orbis ownership database
:mod:`.freedomhouse`      Freedom House "Freedom on the Net" reports
:mod:`.wikipedia`         Wikipedia country telecom / SOE articles
:mod:`.documents`         Confirmation corpus (websites, annual reports,
                          regulators, World Bank/IMF, CommsUpdate, ITU...)
========================  =====================================================

The classification pipeline consumes only these projections — never the
world object's ground truth — so the reproduction preserves the paper's
actual inference problem.
"""

from repro.sources.base import InputSource, SOURCE_CODES
from repro.sources.prefix2as import Prefix2ASTable
from repro.sources.geolocation import GeolocationService
from repro.sources.eyeballs import EyeballDataset
from repro.sources.whois import WhoisDatabase, WhoisRecord
from repro.sources.peeringdb import PeeringDBDataset, PeeringDBRecord
from repro.sources.as2org import As2OrgDataset
from repro.sources.asrank import AsRankDataset
from repro.sources.orbis import OrbisDatabase, OrbisRecord
from repro.sources.freedomhouse import FreedomHouseReports
from repro.sources.wikipedia import WikipediaArticles
from repro.sources.documents import (
    ConfirmationCorpus,
    Document,
    OwnershipClaim,
    SourceType,
)

__all__ = [
    "InputSource",
    "SOURCE_CODES",
    "Prefix2ASTable",
    "GeolocationService",
    "EyeballDataset",
    "WhoisDatabase",
    "WhoisRecord",
    "PeeringDBDataset",
    "PeeringDBRecord",
    "As2OrgDataset",
    "AsRankDataset",
    "OrbisDatabase",
    "OrbisRecord",
    "FreedomHouseReports",
    "WikipediaArticles",
    "ConfirmationCorpus",
    "Document",
    "OwnershipClaim",
    "SourceType",
]
