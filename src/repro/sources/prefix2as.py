"""Prefix-to-AS table (the CAIDA ``prefix2as`` stand-in).

Derived directly from the world's announced prefixes — the real dataset is
built from public BGP dumps and is essentially exact, so this source carries
no noise model.  It provides the origin-AS view that both the geolocation
candidate source and the CTI metric consume.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SourceError
from repro.net.prefix import (
    Prefix,
    PrefixTrie,
    sweep_cut_points,
    sweep_uncovered_counts,
)

__all__ = ["FlatPrefixCounts", "Prefix2ASTable"]


def _sweep_span_task(state, span: Tuple[int, int]) -> bytes:
    """Sweep one independent table range; returns raw ``'q'`` count bytes.

    Bytes (not arrays) cross the process boundary so the coordinator's
    merge is a straight ``frombytes`` concatenation in span order.
    """
    bases, lengths = state
    start, stop = span
    return sweep_uncovered_counts(bases, lengths, start, stop).tobytes()


class FlatPrefixCounts:
    """SoA view of the announced table with Appendix-G usable counts.

    Four parallel columns in table (base, length) sort order: prefix base
    addresses (``'I'``), prefix lengths (``'B'``), origin ASNs (``'q'``)
    and the uncovered address count of each prefix (``'q'``, the
    more-specific accounting already applied).  Iterating :meth:`rows`
    replays exactly the ``(prefix, origin)`` order of the owning table, so
    index builds over the flat view are byte-identical to dict walks.
    Implements the :mod:`repro.parallel.shm` shareable protocol.
    """

    FORMATS: Tuple[str, ...] = ("I", "B", "q", "q")

    __slots__ = ("bases", "lengths", "origins", "uncovered")

    def __init__(
        self,
        bases: Sequence[int],
        lengths: Sequence[int],
        origins: Sequence[int],
        uncovered: Sequence[int],
    ) -> None:
        self.bases = bases
        self.lengths = lengths
        self.origins = origins
        self.uncovered = uncovered

    def __len__(self) -> int:
        return len(self.bases)

    def rows(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(base, length, origin, uncovered)`` in table order."""
        return zip(self.bases, self.lengths, self.origins, self.uncovered)

    def __shm_export__(self):
        buffers = (self.bases, self.lengths, self.origins, self.uncovered)
        return {}, list(zip(self.FORMATS, buffers))

    @classmethod
    def __shm_rebuild__(cls, meta, views) -> "FlatPrefixCounts":
        return cls(*views)


class Prefix2ASTable:
    """All BGP-announced (prefix, origin ASN) pairs with lookup structures."""

    def __init__(self, entries: List[Tuple[Prefix, int]]) -> None:
        if not entries:
            raise SourceError("prefix2as table cannot be empty")
        self._entries = sorted(entries, key=lambda pair: (pair[0].base, pair[0].length))
        self._by_origin: Dict[int, List[Prefix]] = {}
        for prefix, origin in self._entries:
            self._by_origin.setdefault(origin, []).append(prefix)
        self._flat: Optional[FlatPrefixCounts] = None
        # The trie only serves point queries (longest match, per-prefix
        # uncovered counts); the pipeline's batch accounting runs on the
        # linear sweep over the sorted columns instead, so the trie build —
        # formerly the dominant serial fraction of table construction at
        # scale — is deferred until a point query actually needs it.
        self._trie_obj: Optional[PrefixTrie[int]] = None

    @property
    def _trie(self) -> PrefixTrie[int]:
        if self._trie_obj is None:
            self._trie_obj = PrefixTrie(self._entries)
        return self._trie_obj

    @classmethod
    def from_world(cls, world) -> "Prefix2ASTable":
        """Build the table from a :class:`~repro.world.generator.World`."""
        return cls(world.prefix_table())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Prefix, int]]:
        return iter(self._entries)

    @property
    def origins(self) -> Set[int]:
        """All origin ASNs visible in the global routing table."""
        return set(self._by_origin)

    def prefixes_of(self, origin: int) -> List[Prefix]:
        """Prefixes announced by ``origin`` (empty list if none)."""
        return list(self._by_origin.get(origin, []))

    def origin_of(self, address: int) -> Optional[int]:
        """Origin AS of the longest prefix covering ``address``."""
        match = self._trie.longest_match(address)
        return match[1] if match else None

    def origin_of_prefix(self, prefix: Prefix) -> Optional[int]:
        """Origin of an exactly-announced prefix."""
        return self._trie.get(prefix)

    def uncovered_addresses(self, prefix: Prefix) -> int:
        """Addresses of ``prefix`` not covered by a more-specific announcement
        (the Appendix-G ``a(p, C)`` accounting rule)."""
        return self._trie.uncovered_addresses(prefix)

    def uncovered_address_counts(self) -> Dict[Prefix, int]:
        """``a(p, C)`` for every announced prefix in one post-order trie pass
        (memoized; the table is immutable).  Treat as read-only."""
        return self._trie.uncovered_address_counts()

    def flat_counts(self, context=None) -> FlatPrefixCounts:
        """The SoA prefix/count view (memoized; the table is immutable).

        The columns are filled in entry order and the usable counts come
        from the linear stack sweep (:func:`~repro.net.prefix.
        sweep_uncovered_counts`) over the already-sorted (base, length)
        columns — no trie.  With an :class:`~repro.parallel.context.
        ExecutionContext`, the table is split at covering-gap cut points
        (per address block, i.e. per RIR in generated worlds) and the
        independent ranges sweep in parallel; serial and parallel builds
        are byte-identical because each range's counts depend only on its
        own rows.  The view is what the CTI index build iterates — and
        being shm-shareable, what a sharded index build ships.
        """
        if self._flat is None:
            bases = array("I")
            lengths = array("B")
            origins = array("q")
            for prefix, origin in self._entries:
                bases.append(prefix.base)
                lengths.append(prefix.length)
                origins.append(origin)
            counts = self._sweep_counts(bases, lengths, context)
            self._flat = FlatPrefixCounts(bases, lengths, origins, counts)
        return self._flat

    @staticmethod
    def _sweep_counts(bases: array, lengths: array, context) -> array:
        if context is None or getattr(context, "backend", None) in (None, "serial"):
            return sweep_uncovered_counts(bases, lengths)
        jobs = max(getattr(context, "jobs", 1), 1)
        bounds = sweep_cut_points(bases, lengths, jobs * 4)
        spans = list(zip(bounds, bounds[1:]))
        if len(spans) <= 1:
            return sweep_uncovered_counts(bases, lengths)
        chunks = context.map_ordered(
            _sweep_span_task,
            spans,
            state=(bases, lengths),
            chunksize=1,
            label="prefix.sweep",
        )
        counts = array("q")
        for chunk in chunks:
            counts.frombytes(chunk)
        return counts

    def _reference_flat_counts(self) -> FlatPrefixCounts:
        """Trie-built SoA view: the pre-sweep implementation, retained as
        the equivalence oracle for :meth:`flat_counts`."""
        uncovered = self.uncovered_address_counts()
        bases = array("I")
        lengths = array("B")
        origins = array("q")
        counts = array("q")
        for prefix, origin in self._entries:
            bases.append(prefix.base)
            lengths.append(prefix.length)
            origins.append(origin)
            counts.append(uncovered[prefix])
        return FlatPrefixCounts(bases, lengths, origins, counts)

    def announced_address_counts(self) -> Dict[int, int]:
        """De-duplicated announced address count per origin AS."""
        flat = self.flat_counts()
        totals: Dict[int, int] = {}
        for origin, count in zip(flat.origins, flat.uncovered):
            totals[origin] = totals.get(origin, 0) + count
        return totals

    def total_announced_addresses(self) -> int:
        """Total de-duplicated announced address space."""
        return sum(self.announced_address_counts().values())
