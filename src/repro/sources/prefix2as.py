"""Prefix-to-AS table (the CAIDA ``prefix2as`` stand-in).

Derived directly from the world's announced prefixes — the real dataset is
built from public BGP dumps and is essentially exact, so this source carries
no noise model.  It provides the origin-AS view that both the geolocation
candidate source and the CTI metric consume.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SourceError
from repro.net.prefix import Prefix, PrefixTrie

__all__ = ["FlatPrefixCounts", "Prefix2ASTable"]


class FlatPrefixCounts:
    """SoA view of the announced table with Appendix-G usable counts.

    Four parallel columns in table (base, length) sort order: prefix base
    addresses (``'I'``), prefix lengths (``'B'``), origin ASNs (``'q'``)
    and the uncovered address count of each prefix (``'q'``, the
    more-specific accounting already applied).  Iterating :meth:`rows`
    replays exactly the ``(prefix, origin)`` order of the owning table, so
    index builds over the flat view are byte-identical to dict walks.
    Implements the :mod:`repro.parallel.shm` shareable protocol.
    """

    FORMATS: Tuple[str, ...] = ("I", "B", "q", "q")

    __slots__ = ("bases", "lengths", "origins", "uncovered")

    def __init__(
        self,
        bases: Sequence[int],
        lengths: Sequence[int],
        origins: Sequence[int],
        uncovered: Sequence[int],
    ) -> None:
        self.bases = bases
        self.lengths = lengths
        self.origins = origins
        self.uncovered = uncovered

    def __len__(self) -> int:
        return len(self.bases)

    def rows(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(base, length, origin, uncovered)`` in table order."""
        return zip(self.bases, self.lengths, self.origins, self.uncovered)

    def __shm_export__(self):
        buffers = (self.bases, self.lengths, self.origins, self.uncovered)
        return {}, list(zip(self.FORMATS, buffers))

    @classmethod
    def __shm_rebuild__(cls, meta, views) -> "FlatPrefixCounts":
        return cls(*views)


class Prefix2ASTable:
    """All BGP-announced (prefix, origin ASN) pairs with lookup structures."""

    def __init__(self, entries: List[Tuple[Prefix, int]]) -> None:
        if not entries:
            raise SourceError("prefix2as table cannot be empty")
        self._entries = sorted(entries, key=lambda pair: (pair[0].base, pair[0].length))
        self._trie: PrefixTrie[int] = PrefixTrie(self._entries)
        self._by_origin: Dict[int, List[Prefix]] = {}
        for prefix, origin in self._entries:
            self._by_origin.setdefault(origin, []).append(prefix)
        self._flat: Optional[FlatPrefixCounts] = None

    @classmethod
    def from_world(cls, world) -> "Prefix2ASTable":
        """Build the table from a :class:`~repro.world.generator.World`."""
        return cls(world.prefix_table())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Prefix, int]]:
        return iter(self._entries)

    @property
    def origins(self) -> Set[int]:
        """All origin ASNs visible in the global routing table."""
        return set(self._by_origin)

    def prefixes_of(self, origin: int) -> List[Prefix]:
        """Prefixes announced by ``origin`` (empty list if none)."""
        return list(self._by_origin.get(origin, []))

    def origin_of(self, address: int) -> Optional[int]:
        """Origin AS of the longest prefix covering ``address``."""
        match = self._trie.longest_match(address)
        return match[1] if match else None

    def origin_of_prefix(self, prefix: Prefix) -> Optional[int]:
        """Origin of an exactly-announced prefix."""
        return self._trie.get(prefix)

    def uncovered_addresses(self, prefix: Prefix) -> int:
        """Addresses of ``prefix`` not covered by a more-specific announcement
        (the Appendix-G ``a(p, C)`` accounting rule)."""
        return self._trie.uncovered_addresses(prefix)

    def uncovered_address_counts(self) -> Dict[Prefix, int]:
        """``a(p, C)`` for every announced prefix in one post-order trie pass
        (memoized; the table is immutable).  Treat as read-only."""
        return self._trie.uncovered_address_counts()

    def flat_counts(self) -> FlatPrefixCounts:
        """The SoA prefix/count view (memoized; the table is immutable).

        One trie pass sizes every prefix, then the columns are filled in
        entry order.  The view is what the CTI index build iterates — and
        being shm-shareable, what a sharded index build would ship.
        """
        if self._flat is None:
            uncovered = self.uncovered_address_counts()
            bases = array("I")
            lengths = array("B")
            origins = array("q")
            counts = array("q")
            for prefix, origin in self._entries:
                bases.append(prefix.base)
                lengths.append(prefix.length)
                origins.append(origin)
                counts.append(uncovered[prefix])
            self._flat = FlatPrefixCounts(bases, lengths, origins, counts)
        return self._flat

    def announced_address_counts(self) -> Dict[int, int]:
        """De-duplicated announced address count per origin AS."""
        uncovered = self.uncovered_address_counts()
        totals: Dict[int, int] = {}
        for prefix, origin in self._entries:
            totals[origin] = totals.get(origin, 0) + uncovered[prefix]
        return totals

    def total_announced_addresses(self) -> int:
        """Total de-duplicated announced address space."""
        return sum(self.announced_address_counts().values())
