"""Wikipedia-style country telecom / state-owned-enterprise articles.

The paper harvests two kinds of articles per country: "Telecommunications in
X" landscape pages and "List of state-owned enterprises of X" pages (§4.3).
Articles exist more often for countries with mature digital ecosystems, have
imperfect recall, and — unlike Freedom House — are *not* taken at face
value: they contain occasional false positives (stale privatization status,
minority stakes reported as control) that the manual confirmation stage must
filter out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed

__all__ = ["WikipediaArticle", "WikipediaArticles"]


@dataclass(frozen=True)
class WikipediaArticle:
    """One country article listing purportedly state-owned telcos."""

    cc: str
    title: str
    claimed_state_owned: Tuple[str, ...]  # company names as written


class WikipediaArticles:
    """Per-country article index."""

    def __init__(self, articles: List[WikipediaArticle]) -> None:
        self._articles = list(articles)
        self._by_cc: Dict[str, List[WikipediaArticle]] = {}
        for article in articles:
            self._by_cc.setdefault(article.cc, []).append(article)

    @classmethod
    def from_world(
        cls, world, noise: Optional[SourceNoiseConfig] = None
    ) -> "WikipediaArticles":
        noise = noise or SourceNoiseConfig()
        rng = random.Random(derive_seed(world.config.seed, "wikipedia"))
        truth_by_cc: Dict[str, List[Tuple[str, str]]] = {}
        for gto in sorted(world.ground_truth(), key=lambda g: g.operator.entity_id):
            truth_by_cc.setdefault(gto.operator.cc, []).append(
                (gto.operator.display_name, gto.operator.role.value)
            )
        minority_by_cc: Dict[str, List[str]] = {}
        for operator_id in sorted(world.minority_operator_ids()):
            operator = world.operator(operator_id)
            minority_by_cc.setdefault(operator.cc, []).append(operator.display_name)
        articles: List[WikipediaArticle] = []
        country_by_cc = {c.cc: c for c in world.countries}
        for cc in sorted(country_by_cc):
            country = country_by_cc[cc]
            exists = rng.random() < noise.wikipedia_coverage[country.dev_tier]
            if not exists:
                continue
            claimed: List[str] = []
            for name, role in truth_by_cc.get(cc, []):
                recall = noise.wikipedia_recall
                if role in ("transit", "cable"):
                    # Landscape articles rarely list wholesale-only firms.
                    recall *= 0.3
                if rng.random() < recall:
                    claimed.append(name)
            # Stale/incorrect claims: minority stakes written up as state
            # ownership (removed later by the confirmation stage).
            for name in minority_by_cc.get(cc, []):
                if rng.random() < 0.12:
                    claimed.append(name)
            if not claimed:
                continue
            title = rng.choice(
                (
                    f"Telecommunications in {country.name}",
                    f"List of state-owned enterprises of {country.name}",
                )
            )
            articles.append(
                WikipediaArticle(cc=cc, title=title, claimed_state_owned=tuple(claimed))
            )
        return cls(articles)

    def __len__(self) -> int:
        return len(self._articles)

    def articles_for(self, cc: str) -> List[WikipediaArticle]:
        return list(self._by_cc.get(cc, []))

    def all_articles(self) -> List[WikipediaArticle]:
        return list(self._articles)

    def state_owned_company_names(self) -> List[Tuple[str, str]]:
        """(company name, country) pairs claimed state-owned by articles."""
        return [
            (name, article.cc)
            for article in self._articles
            for name in article.claimed_state_owned
        ]
