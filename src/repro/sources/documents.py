"""The confirmation-document corpus (stage-2 evidence, §5.1).

The paper's ownership verification consults authoritative online sources:
company websites, corporate annual reports, government transparency portals,
Freedom House reports, CommsUpdate articles, World Bank / IMF country
reports, ITU materials, FCC/SEC filings, local regulators and news.  Here
those become a synthetic corpus of :class:`Document` objects, each carrying
machine-readable :class:`OwnershipClaim` entries *plus* the human-readable
quote that the output dataset records (Listing 1's ``quote`` field).

Documents are truthful — the paper treats these sources as authoritative —
so the noise model is *scarcity*: whether a document exists at all depends
on the company's country (ICT maturity, §9 "visibility"), whether the firm
is listed, and per-source coverage priors calibrated to reproduce the
paper's Table 1 confirmation-source breakdown.

Ownership chains are deliberately preserved: an annual report lists the raw
shareholder structure ("Khazanah-style" funds with sub-majority stakes),
and only a *separate* document about each fund reveals that the fund is
government-controlled.  The confirmation engine must chase those links just
like the authors did by hand.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed
from repro.text.normalize import name_similarity, name_tokens
from repro.world.entities import EntityKind, Operator, OperatorRole

__all__ = ["SourceType", "OwnershipClaim", "Document", "ConfirmationCorpus"]


class SourceType(enum.Enum):
    """Confirmation-source categories (the rows of the paper's Table 1)."""

    COMPANY_WEBSITE = "Company's website"
    ANNUAL_REPORT = "Company's annual report"
    FREEDOM_HOUSE = "Freedom House"
    COMMSUPDATE = "TG's commsupdate"
    WORLD_BANK = "World Bank"
    ITU = "ITU"
    FCC = "FCC"
    NEWS = "News"
    REGULATOR = "regulator"
    GOVERNMENT_PORTAL = "Government portal"
    SEC = "SEC"

    @property
    def authority(self) -> int:
        """Priority when several sources confirm the same company; the
        paper's Table 1 reflects this preference order."""
        order = (
            SourceType.COMPANY_WEBSITE,
            SourceType.ANNUAL_REPORT,
            SourceType.FREEDOM_HOUSE,
            SourceType.COMMSUPDATE,
            SourceType.WORLD_BANK,
            SourceType.ITU,
            SourceType.FCC,
            SourceType.NEWS,
            SourceType.REGULATOR,
            SourceType.GOVERNMENT_PORTAL,
            SourceType.SEC,
        )
        return order.index(self)


@dataclass(frozen=True)
class OwnershipClaim:
    """One shareholder line as written in a document.

    ``holder_is_government`` is True only when the document itself states
    the holder is a government unit; otherwise the analyst must investigate
    the holder separately (fund / holding-company chains).
    """

    subject_name: str
    holder_name: str
    fraction: Optional[float]       # None when the text gives no percentage
    holder_is_government: bool
    holder_cc: Optional[str]
    holder_is_subnational: bool = False


@dataclass(frozen=True)
class Document:
    """One confirmation document."""

    doc_id: str
    source_type: SourceType
    cc: str                        # country the document concerns
    url: str
    language: str
    subject_names: Tuple[str, ...]
    claims: Tuple[OwnershipClaim, ...]
    subsidiary_names: Tuple[str, ...] = ()
    quote: str = ""


def _render_fraction(fraction: Optional[float]) -> str:
    if fraction is None:
        return "a controlling interest"
    return f"{fraction * 100:.1f}%"


class ConfirmationCorpus:
    """Token-indexed document collection with fuzzy name search."""

    def __init__(self, documents: List[Document]) -> None:
        self._documents = list(documents)
        self._token_index: Dict[str, Set[int]] = {}
        self._domain_index: Dict[str, List[int]] = {}
        for i, doc in enumerate(self._documents):
            for name in doc.subject_names:
                for token in name_tokens(name):
                    self._token_index.setdefault(token, set()).add(i)
            host = doc.url.split("//", 1)[-1].split("/", 1)[0].lower()
            self._domain_index.setdefault(host, []).append(i)

    def __len__(self) -> int:
        return len(self._documents)

    def all_documents(self) -> List[Document]:
        return list(self._documents)

    def find_documents(
        self, company_name: str, min_similarity: float = 0.72
    ) -> List[Document]:
        """Documents whose subject matches ``company_name`` fuzzily.

        Candidate documents are pre-filtered through a token index, then
        scored with :func:`~repro.text.normalize.name_similarity`; results
        come back ordered by source authority.
        """
        tokens = name_tokens(company_name)
        candidate_ids: Set[int] = set()
        for token in tokens:
            candidate_ids |= self._token_index.get(token, set())
        matched: List[Tuple[float, Document]] = []
        for i in sorted(candidate_ids):
            doc = self._documents[i]
            best = max(
                (name_similarity(company_name, name) for name in doc.subject_names),
                default=0.0,
            )
            if best >= min_similarity:
                matched.append((best, doc))
        matched.sort(key=lambda pair: (pair[1].source_type.authority, -pair[0]))
        return [doc for _, doc in matched]

    def find_by_domain(self, domain: str) -> List[Document]:
        """Documents hosted on ``domain`` — the "search the contact domain"
        fallback the paper uses when names fail (§4.2)."""
        return [self._documents[i] for i in self._domain_index.get(domain.lower(), [])]

    def count_by_source(self) -> Dict[SourceType, int]:
        counts: Dict[SourceType, int] = {}
        for doc in self._documents:
            counts[doc.source_type] = counts.get(doc.source_type, 0) + 1
        return counts

    # -- corpus synthesis --------------------------------------------------------
    @classmethod
    def from_world(
        cls,
        world,
        freedomhouse=None,
        noise: Optional[SourceNoiseConfig] = None,
    ) -> "ConfirmationCorpus":
        """Synthesize the corpus from the world's true ownership structures.

        ``freedomhouse`` (a
        :class:`~repro.sources.freedomhouse.FreedomHouseReports`) is folded
        in so FH mentions double as confirmation documents, exactly as the
        paper decided to allow (§7: "Freedom House is a reliable source").
        """
        noise = noise or SourceNoiseConfig()
        builder = _CorpusBuilder(world, noise)
        documents = builder.build()
        if freedomhouse is not None:
            for j, mention in enumerate(freedomhouse.all_mentions()):
                documents.append(
                    Document(
                        doc_id=f"fh-{j:04d}",
                        source_type=SourceType.FREEDOM_HOUSE,
                        cc=mention.cc,
                        url=f"https://freedomhouse.example/{mention.cc.lower()}"
                            f"/freedom-net/{mention.year}",
                        language="English",
                        subject_names=(mention.company_name,),
                        claims=(
                            OwnershipClaim(
                                subject_name=mention.company_name,
                                holder_name="the state",
                                fraction=None,
                                holder_is_government=True,
                                holder_cc=mention.cc,
                            ),
                        ),
                        quote=mention.quote,
                    )
                )
        return cls(documents)


#: Per-tier probability that a company's website exists and discloses
#: ownership, that an annual report is published, etc.  Tuned against the
#: paper's Table 1 distribution.
_WEBSITE_PROB = {0: 0.72, 1: 0.85, 2: 0.95}
_WEBSITE_DISCLOSES = {0: 0.64, 1: 0.72, 2: 0.8}
_ANNUAL_REPORT_PROB = {0: 0.22, 1: 0.42, 2: 0.58}
_WORLD_BANK_PROB = {0: 0.5, 1: 0.2, 2: 0.0}
_ITU_PROB = {0: 0.08, 1: 0.03, 2: 0.0}
_COMMSUPDATE_PROB = 0.22
_NEWS_PROB = 0.03
_REGULATOR_PROB = 0.05
#: Advanced countries with Nordic-style transparency portals.
_TRANSPARENCY_PORTAL_PROB = 0.3


class _CorpusBuilder:
    """Internal helper that walks the ownership graph and emits documents."""

    def __init__(self, world, noise: SourceNoiseConfig) -> None:
        self._world = world
        self._noise = noise
        self._rng = random.Random(derive_seed(world.config.seed, "documents"))
        self._tier = {c.cc: c.dev_tier for c in world.countries}
        self._country_name = {c.cc: c.name for c in world.countries}
        self._assessments = world.ownership.assess_all()
        self._docs: List[Document] = []
        self._counter = 0

    def build(self) -> List[Document]:
        ownership = self._world.ownership
        for operator in sorted(ownership.operators(), key=lambda o: o.entity_id):
            if operator.role is OperatorRole.ENTERPRISE:
                continue  # the long tail has no ownership paper trail
            self._emit_operator_documents(operator)
        for entity in sorted(
            ownership.entities(EntityKind.STATE_FUND)
            + ownership.entities(EntityKind.HOLDING),
            key=lambda e: e.entity_id,
        ):
            self._emit_intermediary_document(entity)
        return self._docs

    # -- helpers ------------------------------------------------------------------
    def _next_id(self) -> str:
        self._counter += 1
        return f"doc-{self._counter:05d}"

    def _holder_claim(self, stake, operator_name: str) -> OwnershipClaim:
        ownership = self._world.ownership
        holder = ownership.entity(stake.owner_id)
        if holder.kind is EntityKind.GOVERNMENT:
            holder_name = (
                f"Government of {self._country_name.get(holder.cc, holder.cc)}"
            )
            return OwnershipClaim(
                subject_name=operator_name,
                holder_name=holder_name,
                fraction=stake.fraction,
                holder_is_government=True,
                holder_cc=holder.cc,
            )
        if holder.kind is EntityKind.SUBNATIONAL:
            return OwnershipClaim(
                subject_name=operator_name,
                holder_name=holder.name,
                fraction=stake.fraction,
                holder_is_government=False,
                holder_cc=holder.cc,
                holder_is_subnational=True,
            )
        return OwnershipClaim(
            subject_name=operator_name,
            holder_name=holder.name,
            fraction=stake.fraction,
            holder_is_government=False,
            holder_cc=holder.cc,
        )

    def _shareholder_claims(self, operator: Operator) -> Tuple[OwnershipClaim, ...]:
        stakes = self._world.ownership.shareholders_of(operator.entity_id)
        return tuple(
            self._holder_claim(stake, operator.name)
            for stake in sorted(stakes, key=lambda s: -s.fraction)
        )

    def _subsidiary_names(self, operator: Operator) -> Tuple[str, ...]:
        subs = self._world.ownership.majority_subsidiaries(operator.entity_id)
        return tuple(sub.display_name for sub in subs if isinstance(sub, Operator))

    def _subjects(self, operator: Operator) -> Tuple[str, ...]:
        names = [operator.name]
        if operator.brand and operator.brand != operator.name:
            names.append(operator.brand)
        return tuple(names)

    # -- emitters -----------------------------------------------------------------
    def _emit_operator_documents(self, operator: Operator) -> None:
        rng = self._rng
        tier = self._tier.get(operator.cc, 1)
        claims = self._shareholder_claims(operator)
        gov_claims = tuple(c for c in claims if c.holder_is_government)
        subjects = self._subjects(operator)
        country = self._country_name.get(operator.cc, operator.cc)

        website_prob = _WEBSITE_PROB[tier]
        disclose_prob = _WEBSITE_DISCLOSES[tier]
        if operator.role is OperatorRole.INCUMBENT and operator.cc in getattr(
            self._world.config,
            "forced_state_share",
            {},
        ):
            # The famous state monopolies (Ethio-Telecom/ETECSA class)
            # document their ownership prominently.
            website_prob, disclose_prob = 1.0, 1.0
        if any(
            not c.holder_is_government
            and not c.holder_is_subnational
            and (c.fraction or 0.0) >= 0.5
            for c in claims
        ):
            # Subsidiaries usually say "a member of the X group" on their
            # own site.
            disclose_prob = min(1.0, disclose_prob + 0.12)

        # Company website.
        if operator.website and rng.random() < website_prob:
            discloses = rng.random() < disclose_prob
            website_claims = claims if discloses else ()
            quote = ""
            if discloses and claims:
                top = claims[0]
                quote = (
                    f"Major Shareholdings: {top.holder_name} "
                    f"({_render_fraction(top.fraction)})"
                )
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.COMPANY_WEBSITE,
                    cc=operator.cc,
                    url=f"https://{operator.website}/about",
                    language=rng.choice(("English", "English", "Spanish", "French")),
                    subject_names=subjects,
                    claims=website_claims,
                    subsidiary_names=self._subsidiary_names(operator)
                    if discloses else (),
                    quote=quote,
                )
            )

        # Corporate annual report (full shareholder structure + subsidiaries).
        if claims and rng.random() < _ANNUAL_REPORT_PROB[tier]:
            listing = "; ".join(
                f"{c.holder_name}: {_render_fraction(c.fraction)}" for c in claims
            )
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.ANNUAL_REPORT,
                    cc=operator.cc,
                    url=f"https://{operator.website or 'ir.example'}/annual-report.pdf",
                    language="English",
                    subject_names=subjects,
                    claims=claims,
                    subsidiary_names=self._subsidiary_names(operator),
                    quote=f"Shareholder structure: {listing}",
                )
            )

        # Government transparency portal (Nordic-style disclosure).
        if (gov_claims and tier == 2 and rng.random() < _TRANSPARENCY_PORTAL_PROB):
            top = gov_claims[0]
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.GOVERNMENT_PORTAL,
                    cc=operator.cc,
                    url=f"https://government.example/{operator.cc.lower()}/soe",
                    language="English",
                    subject_names=subjects,
                    claims=gov_claims,
                    quote=(
                        f"The state holds {_render_fraction(top.fraction)} of "
                        f"{operator.display_name}."
                    ),
                )
            )

        # World Bank / IMF country diagnostics (developing world only).
        # These sources *assert* state ownership without percentages, so
        # they only exist where the firm is genuinely state-controlled —
        # the paper treats them as authoritative.
        truly_state = (
            self._assessments[operator.entity_id].is_state_controlled
            and operator.offers_unrestricted_service
        )
        if gov_claims and truly_state and rng.random() < _WORLD_BANK_PROB[tier]:
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.WORLD_BANK,
                    cc=operator.cc,
                    url=f"https://openknowledge.example/{operator.cc.lower()}-scd.pdf",
                    language="English",
                    subject_names=subjects,
                    claims=tuple(
                        OwnershipClaim(
                            subject_name=operator.name,
                            holder_name=c.holder_name,
                            fraction=None,  # reports rarely give percentages
                            holder_is_government=True,
                            holder_cc=c.holder_cc,
                        )
                        for c in gov_claims
                    ),
                    quote=(
                        f"The state-owned incumbent {operator.display_name} "
                        f"continues to dominate {country}'s market."
                    ),
                )
            )

        # ITU development-commission materials (assertion-style, truthful).
        if gov_claims and truly_state and rng.random() < _ITU_PROB[tier]:
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.ITU,
                    cc=operator.cc,
                    url=f"https://itu.example/d/{operator.cc.lower()}-profile",
                    language="English",
                    subject_names=subjects,
                    claims=tuple(
                        OwnershipClaim(
                            subject_name=operator.name,
                            holder_name=c.holder_name,
                            fraction=None,
                            holder_is_government=True,
                            holder_cc=c.holder_cc,
                        )
                        for c in gov_claims
                    ),
                    quote=(
                        f"{operator.display_name} is the government-owned "
                        f"operator of {country}."
                    ),
                )
            )

        # CommsUpdate market coverage.
        if claims and rng.random() < _COMMSUPDATE_PROB:
            top = claims[0]
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.COMMSUPDATE,
                    cc=operator.cc,
                    url=f"https://commsupdate.example/articles/{operator.cc.lower()}"
                        f"/{operator.entity_id}",
                    language="English",
                    subject_names=subjects,
                    claims=(top,),
                    quote=(
                        f"{operator.display_name}, in which {top.holder_name} "
                        f"holds {_render_fraction(top.fraction)}, announced "
                        f"network expansion plans."
                    ),
                )
            )

        # FCC / SEC filings for groups with US operations.
        if self._has_us_presence(operator) and gov_claims and self._rng.random() < 0.5:
            source = SourceType.FCC if self._rng.random() < 0.6 else SourceType.SEC
            top = gov_claims[0]
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=source,
                    cc=operator.cc,
                    url=f"https://{source.name.lower()}.example/filings/"
                        f"{operator.entity_id}",
                    language="English",
                    subject_names=subjects,
                    claims=gov_claims,
                    subsidiary_names=self._subsidiary_names(operator),
                    quote=(
                        f"Filing discloses that {top.holder_name} owns "
                        f"{_render_fraction(top.fraction)} of "
                        f"{operator.display_name}."
                    ),
                )
            )

        # Local regulator disclosures and one-off news stories.
        if claims and rng.random() < _REGULATOR_PROB:
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.REGULATOR,
                    cc=operator.cc,
                    url=f"https://regulator.example/{operator.cc.lower()}"
                    f"/licensees/{operator.entity_id}",
                    language=rng.choice(("English", "Spanish")),
                    subject_names=subjects,
                    claims=claims,
                    quote=f"License holder ownership on record for "
                    f"{operator.display_name}.",
                )
            )
        if claims and rng.random() < _NEWS_PROB:
            top = claims[0]
            self._docs.append(
                Document(
                    doc_id=self._next_id(),
                    source_type=SourceType.NEWS,
                    cc=operator.cc,
                    url=f"https://news.example/{operator.entity_id}",
                    language="English",
                    subject_names=subjects,
                    claims=(top,),
                    quote=(
                        f"{top.holder_name} retains "
                        f"{_render_fraction(top.fraction)} of "
                        f"{operator.display_name}, sources said."
                    ),
                )
            )

    def _has_us_presence(self, operator: Operator) -> bool:
        """True if the operator's conglomerate runs a subsidiary in the US."""
        ownership = self._world.ownership
        root = ownership.conglomerate_root(operator.entity_id)
        for sub in ownership.majority_subsidiaries(root.entity_id):
            if sub.cc == "US":
                return True
        return operator.cc == "US"

    def _emit_intermediary_document(self, entity) -> None:
        """Funds and holdings: who controls the intermediary itself.

        These documents are what lets the analyst resolve aggregated-fund
        control: without them the chain ends and the company cannot be
        confirmed.  State funds and holdings are public bodies, so their
        ownership is almost always disclosed somewhere.
        """
        if self._rng.random() > 0.93:
            return
        stakes = self._world.ownership.shareholders_of(entity.entity_id)
        claims = tuple(
            self._holder_claim(stake, entity.name)
            for stake in sorted(stakes, key=lambda s: -s.fraction)
        )
        gov = next((c for c in claims if c.holder_is_government), None)
        quote = (
            f"{entity.name} is wholly owned by {gov.holder_name}."
            if gov is not None
            else f"Corporate profile of {entity.name}."
        )
        self._docs.append(
            Document(
                doc_id=self._next_id(),
                source_type=SourceType.COMPANY_WEBSITE,
                cc=entity.cc,
                url=f"https://{entity.entity_id}.example/profile",
                language="English",
                subject_names=(entity.name,),
                claims=claims,
                quote=quote,
            )
        )
