"""APNIC-style per-AS eyeball population estimates.

APNIC estimates AS user populations from web-advertising samples (§4.1);
estimates are noisy and do not cover every AS.  We model both effects: a
coverage draw per AS (biased toward ASes that actually serve users) and a
log-normal multiplicative error on the true population.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed

__all__ = ["EyeballDataset"]


class EyeballDataset:
    """Per-AS estimated user populations, queryable per country."""

    def __init__(self, estimates: Dict[int, Tuple[str, int]]) -> None:
        #: asn -> (country, estimated users)
        self._estimates = dict(estimates)
        self._by_country: Dict[str, List[Tuple[int, int]]] = {}
        for asn, (cc, users) in self._estimates.items():
            self._by_country.setdefault(cc, []).append((asn, users))

    @classmethod
    def from_world(
        cls, world, noise: Optional[SourceNoiseConfig] = None
    ) -> "EyeballDataset":
        noise = noise or SourceNoiseConfig()
        rng = random.Random(derive_seed(world.config.seed, "eyeballs"))
        estimates: Dict[int, Tuple[str, int]] = {}
        for asn, record in sorted(world.asn_records.items()):
            if record.eyeballs <= 0:
                continue
            if rng.random() > noise.eyeball_coverage:
                continue
            error = math.exp(rng.gauss(0.0, noise.eyeball_noise_sigma))
            estimate = max(1, round(record.eyeballs * error))
            estimates[asn] = (record.cc, estimate)
        return cls(estimates)

    def __len__(self) -> int:
        return len(self._estimates)

    def __contains__(self, asn: int) -> bool:
        return asn in self._estimates

    def estimate(self, asn: int) -> Optional[int]:
        """Estimated users of ``asn`` (None if not covered)."""
        entry = self._estimates.get(asn)
        return entry[1] if entry else None

    def country_of(self, asn: int) -> Optional[str]:
        entry = self._estimates.get(asn)
        return entry[0] if entry else None

    def covered_asns(self) -> List[int]:
        return sorted(self._estimates)

    def country_estimates(self, cc: str) -> List[Tuple[int, int]]:
        """All (asn, users) estimates for one country."""
        return sorted(self._by_country.get(cc, []))

    def country_total(self, cc: str) -> int:
        """Total estimated users in ``cc``."""
        return sum(users for _, users in self._by_country.get(cc, []))

    def country_shares(self, cc: str) -> Dict[int, float]:
        """Per-AS share of a country's estimated eyeballs."""
        total = self.country_total(cc)
        if total == 0:
            return {}
        return {asn: users / total for asn, users in self._by_country.get(cc, [])}
