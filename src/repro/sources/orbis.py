"""Orbis-style commercial ownership database.

Bureau van Dijk's Orbis covers hundreds of millions of firms, but the paper
finds it is neither complete nor fully accurate for this problem (§7):
12 false positives (mostly foreign subsidiaries, some county-owned firms
mislabeled as federal) and ~140 false negatives concentrated in small and
developing-world companies (no state-owned telcos at all in 11 of 14 LACNIC
countries where they exist).

The simulation reproduces exactly those error modes: developing-tier firms
are frequently missing or unlabeled, subnational-owned firms occasionally
get a (wrong) federal state-owned label, and a few private-conglomerate
subsidiaries are mislabeled as state-owned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed
from repro.world.entities import EntityKind, OperatorRole, OperatorScope
from repro.text.normalize import normalize_name

__all__ = ["OrbisRecord", "OrbisDatabase"]


@dataclass(frozen=True)
class OrbisRecord:
    """One company entry as the Orbis query engine returns it."""

    company_name: str
    cc: str
    sector: str
    state_owned: bool           # Orbis's (possibly wrong) label
    ultimate_owner_name: Optional[str]  # "GUO" field, when known


class OrbisDatabase:
    """Queryable ownership database with calibrated error modes."""

    def __init__(self, records: List[OrbisRecord]) -> None:
        self._records = list(records)
        self._by_name: Dict[str, OrbisRecord] = {
            normalize_name(r.company_name): r for r in records
        }

    @classmethod
    def from_world(
        cls, world, noise: Optional[SourceNoiseConfig] = None
    ) -> "OrbisDatabase":
        noise = noise or SourceNoiseConfig()
        rng = random.Random(derive_seed(world.config.seed, "orbis"))
        coverage_by_tier = {0: 0.55, 1: 0.82, 2: 0.96}
        fn_by_tier = {
            0: noise.orbis_false_negative_rate_developing,
            1: noise.orbis_false_negative_rate_emerging,
            2: noise.orbis_false_negative_rate_advanced,
        }
        tier_of_cc = {c.cc: c.dev_tier for c in world.countries}
        assessments = world.ownership.assess_all()
        records: List[OrbisRecord] = []
        for operator in sorted(world.operators(), key=lambda o: o.entity_id):
            tier = tier_of_cc.get(operator.cc, 1)
            if rng.random() > coverage_by_tier[tier]:
                continue  # company entirely missing from the database
            verdict = assessments[operator.entity_id]
            truly_state = verdict.is_state_controlled
            parent = world.ownership.majority_parent(operator.entity_id)
            owner_name = parent.name if parent is not None else None
            if truly_state and operator.scope is OperatorScope.NATIONAL:
                fn_rate = fn_by_tier[tier]
                if operator.role in (OperatorRole.TRANSIT, OperatorRole.CABLE):
                    # Wholesale-only firms fly under the radar of business
                    # databases (the paper's Appendix D observation).
                    fn_rate = max(fn_rate, 0.7)
                labeled = rng.random() > fn_rate
            elif parent is not None and parent.kind is EntityKind.SUBNATIONAL:
                # County/province-owned firm occasionally mislabeled as
                # (federal) state-owned — the paper's Colombia example.
                labeled = rng.random() < 0.2
            elif parent is not None and parent.kind is EntityKind.PRIVATE:
                # Private-conglomerate subsidiary mislabeled (Comcel case).
                labeled = rng.random() < noise.orbis_false_positive_rate
            else:
                # Plain private firms are essentially never mislabeled; the
                # paper's 12 FPs were all structural (subsidiaries/counties).
                labeled = rng.random() < 0.001
            # Orbis's industry taxonomy keeps research networks and
            # government agencies out of the "telecommunications" sector,
            # which is why the paper's SOE-telco query never surfaces them.
            sector = {
                OperatorRole.ACADEMIC: "Education",
                OperatorRole.GOVNET: "Public Administration",
                OperatorRole.NIC: "Information Services",
            }.get(operator.role, "Telecommunications")
            records.append(
                OrbisRecord(
                    company_name=operator.name,
                    cc=operator.cc,
                    sector=sector,
                    state_owned=labeled,
                    ultimate_owner_name=owner_name,
                )
            )
        return cls(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[OrbisRecord]:
        return iter(self._records)

    def state_owned_telcos(self) -> List[OrbisRecord]:
        """The paper's Orbis query: telecoms with majority sovereign equity."""
        return [
            record
            for record in self._records
            if record.state_owned and record.sector == "Telecommunications"
        ]

    def lookup_company(self, name: str) -> Optional[OrbisRecord]:
        """Exact (normalized) name lookup."""
        return self._by_name.get(normalize_name(name))

    def companies_in(self, cc: str) -> List[OrbisRecord]:
        return [record for record in self._records if record.cc == cc]
