"""PeeringDB-style self-reported operator records.

PeeringDB is voluntary and covers only ~20 % of registered ASes (§4.2), but
operators keep their entries fresh and list recognizable *brand* names and
working websites, which makes it the best corrective for stale WHOIS data.
Coverage is biased toward transit and large networks, who register to
attract peers and customers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.config import SourceNoiseConfig
from repro.rng import derive_seed
from repro.world.entities import OperatorRole

__all__ = ["PeeringDBRecord", "PeeringDBDataset"]

#: PeeringDB "info_type" labels per operator role.
_INFO_TYPES = {
    OperatorRole.INCUMBENT: "Cable/DSL/ISP",
    OperatorRole.ACCESS: "Cable/DSL/ISP",
    OperatorRole.MOBILE: "Cable/DSL/ISP",
    OperatorRole.TRANSIT: "NSP",
    OperatorRole.CABLE: "NSP",
    OperatorRole.ACADEMIC: "Educational/Research",
    OperatorRole.GOVNET: "Government",
    OperatorRole.NIC: "Non-Profit",
    OperatorRole.ENTERPRISE: "Enterprise",
}


@dataclass(frozen=True)
class PeeringDBRecord:
    """One self-reported network entry."""

    asn: int
    name: str          # the operator's current brand name
    website: str
    info_type: str
    cc: str


class PeeringDBDataset:
    """The subset of ASNs registered on PeeringDB."""

    def __init__(self, records: List[PeeringDBRecord]) -> None:
        self._records: Dict[int, PeeringDBRecord] = {r.asn: r for r in records}

    @classmethod
    def from_world(
        cls, world, noise: Optional[SourceNoiseConfig] = None
    ) -> "PeeringDBDataset":
        noise = noise or SourceNoiseConfig()
        rng = random.Random(derive_seed(world.config.seed, "peeringdb"))
        records: List[PeeringDBRecord] = []
        for asn, rec in sorted(world.asn_records.items()):
            operator = world.operator(rec.operator_id)
            probability = noise.peeringdb_coverage
            if rec.role in (OperatorRole.TRANSIT, OperatorRole.CABLE):
                probability = min(1.0, probability * noise.peeringdb_transit_boost)
            elif rec.role is OperatorRole.INCUMBENT:
                probability = min(1.0, probability * 2.0)
            if rng.random() > probability:
                continue
            records.append(
                PeeringDBRecord(
                    asn=asn,
                    name=operator.display_name,
                    website=operator.website or "",
                    info_type=_INFO_TYPES[rec.role],
                    cc=rec.cc,
                )
            )
        return cls(records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def __iter__(self) -> Iterator[PeeringDBRecord]:
        return iter(self._records.values())

    def lookup(self, asn: int) -> Optional[PeeringDBRecord]:
        """The PeeringDB entry for ``asn`` (None: not registered)."""
        return self._records.get(asn)

    def coverage(self, universe_size: int) -> float:
        """Fraction of the AS universe present in PeeringDB."""
        if universe_size <= 0:
            return 0.0
        return len(self._records) / universe_size
