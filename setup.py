"""Legacy setup shim.

Present so that ``pip install -e .`` works on environments whose setuptools
lacks the ``wheel`` package required for PEP-517 editable installs; all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
